#ifndef BENTO_IO_BCF_H_
#define BENTO_IO_BCF_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "columnar/table.h"
#include "io/encoding.h"

namespace bento::io {

/// \brief BCF ("Bento Columnar Format") is this repo's Parquet stand-in:
/// a footer-indexed, row-grouped, column-chunked binary format with
/// per-page encodings (PLAIN/DELTA/DICT/RLE) and optional LZ page
/// compression.
///
/// Layout:
///   "BCF1" | row-group pages... | footer(JSON) | u64 footer_len | "BCF1"
///
/// Each column chunk stores an optional raw validity bitmap page followed by
/// the encoded value page. The footer records offsets/sizes/encodings, so
/// readers can project columns and stream row groups without touching the
/// rest of the file — the property behind the paper's Parquet observations
/// (Fig. 5/6).
struct BcfWriteOptions {
  int64_t row_group_rows = 64 * 1024;
  bool compression = true;
  /// Pad every value page to an 8-byte file offset so mmap readers can hand
  /// out zero-copy int64/float64 views without unaligned loads. Costs at
  /// most 7 bytes per page; the Vaex engine's CSV->BCF conversion turns it
  /// on so the converted store is fully mappable.
  bool align_pages = false;
  /// Write every page in the in-memory buffer layout (PLAIN fixed-width,
  /// STRVIEW strings) instead of the compact DELTA/RLE encodings, so an
  /// mmap reader serves the whole file zero-copy. Spill-materialized frames
  /// use this: combined with align_pages and no compression, a re-mapped
  /// frame charges (almost) nothing against the memory budget.
  bool mappable = false;
};

/// \brief One zone-map-prunable conjunct of a scan filter:
/// `column <cmp> value` over a numeric column. Readers use per-row-group
/// min/max statistics to skip groups that cannot contain a matching row;
/// the full predicate always re-runs on the rows that are read, so stats
/// are an accelerator, never a correctness carrier.
struct ScanPredicate {
  enum class Cmp { kLt, kLe, kGt, kGe, kEq };
  std::string column;
  Cmp cmp = Cmp::kEq;
  double value = 0.0;
};

Status WriteBcf(const col::TablePtr& table, const std::string& path,
                const BcfWriteOptions& options = {});

/// \brief Incremental BCF writer: append tables (each becomes one or more
/// row groups), then Finish() writes the footer. Used for streaming
/// conversions (the Vaex engine's CSV -> memory-mapped format pass) and
/// spill files.
class BcfWriter {
 public:
  static Result<std::unique_ptr<BcfWriter>> Open(
      const std::string& path, const BcfWriteOptions& options = {});

  ~BcfWriter();
  BcfWriter(const BcfWriter&) = delete;
  BcfWriter& operator=(const BcfWriter&) = delete;

  /// Appends `table` as row groups; the schema is fixed by the first call.
  Status Append(const col::TablePtr& table);

  /// Appends ONE row group of `num_rows` rows, fetching columns one at a
  /// time through `column_at` (index into `schema`). Only a single column
  /// needs to be resident at once, so a frame far larger than the memory
  /// budget can be compacted into one row group — the shape that lets an
  /// mmap reader serve the whole frame as zero-copy views later.
  Status AppendColumnGroup(
      const col::SchemaPtr& schema, int64_t num_rows,
      const std::function<Result<col::ArrayPtr>(int)>& column_at);

  /// Writes the footer and closes the file. Must be called exactly once.
  Status Finish();

 private:
  struct GroupMeta;
  BcfWriter() = default;

  Status AppendGroup(const col::TablePtr& slice);
  Status WriteColumnChunk(const col::ArrayPtr& column, GroupMeta* meta);

  std::FILE* file_ = nullptr;
  BcfWriteOptions options_;
  col::SchemaPtr schema_;
  uint64_t offset_ = 0;
  int64_t total_rows_ = 0;
  std::vector<GroupMeta> groups_;
  bool finished_ = false;
};

struct BcfReadOptions {
  /// Surface string columns whose every chunk is DICT-encoded as
  /// dictionary-encoded categoricals instead of materializing the strings —
  /// the decoded page's codes become the column's codes directly. Columns
  /// with any PLAIN chunk still decode as plain strings (mixed-encoding
  /// groups cannot share one categorical type across a concat).
  bool strings_as_categorical = false;
  /// Map the whole file read-only and serve uncompressed PLAIN fixed-width
  /// pages as zero-copy views into the mapping (the Vaex model: file-backed
  /// bytes are pageable, so they charge nothing against the MemoryPool).
  /// Encoded/compressed/misaligned pages fall back to the buffered decode
  /// path. Overridable per-process via BENTO_BCF_MMAP=on/off.
  bool use_mmap = false;
};

/// RAII read-only mapping of a whole BCF file (defined in bcf.cc). Zero-copy
/// column buffers co-own the region, so the mapping outlives the reader if
/// column views are still referenced.
struct BcfMmapRegion;

class BcfReader {
 public:
  static Result<std::unique_ptr<BcfReader>> Open(
      const std::string& path, const BcfReadOptions& options = {});

  ~BcfReader();
  BcfReader(const BcfReader&) = delete;
  BcfReader& operator=(const BcfReader&) = delete;

  const col::SchemaPtr& schema() const { return schema_; }
  int num_row_groups() const { return static_cast<int>(groups_.size()); }
  int64_t num_rows() const { return num_rows_; }

  /// Reads one row group, optionally projecting to `columns` (all when
  /// empty). Projection touches only the selected chunks' bytes.
  Result<col::TablePtr> ReadRowGroup(
      int group, const std::vector<std::string>& columns = {});

  /// Concatenation of all row groups.
  Result<col::TablePtr> ReadAll(const std::vector<std::string>& columns = {});

  /// True unless the group's zone-map statistics prove no row can satisfy
  /// `pred`. Unknown columns and chunks without statistics (string columns,
  /// all-null chunks, files written before stats existed) return true.
  bool GroupMayMatch(int group, const ScanPredicate& pred) const;

  /// True when the file is served through an mmap region (zero-copy mode).
  bool mmap_active() const { return map_ != nullptr; }

  /// Streaming hint: the caller is done with `group`; its pages may be
  /// dropped from the page cache (madvise DONTNEED). No-op when buffered or
  /// out of range. Safe even if zero-copy views of the group are still
  /// alive — the kernel faults the pages back in on next access.
  void DoneWithGroup(int group);

 private:
  struct ColumnChunk {
    uint64_t validity_offset = 0;
    uint64_t validity_size = 0;
    uint64_t data_offset = 0;
    uint64_t data_size = 0;      // on-disk (possibly compressed) size
    uint64_t raw_size = 0;       // decoded-page byte size
    Encoding encoding = Encoding::kPlain;
    bool compressed = false;
    int64_t null_count = 0;
    /// Zone map over the chunk's valid values (numeric columns only).
    bool has_stats = false;
    double min = 0.0;
    double max = 0.0;
  };
  struct RowGroup {
    int64_t num_rows = 0;
    std::vector<ColumnChunk> columns;
  };

  BcfReader() = default;

  Result<std::vector<uint8_t>> ReadRange(uint64_t offset, uint64_t size);
  /// [first page byte, last page byte) span of a row group, for madvise.
  std::pair<uint64_t, uint64_t> GroupByteRange(const RowGroup& g) const;

  std::FILE* file_ = nullptr;
  std::shared_ptr<BcfMmapRegion> map_;
  uint64_t data_end_ = 0;  // pages live in [4, data_end_); footer follows
  BcfReadOptions options_;
  col::SchemaPtr schema_;
  std::vector<RowGroup> groups_;
  int64_t num_rows_ = 0;
  /// Per column: every row group's chunk is DICT-encoded (so the column can
  /// surface as one categorical type under strings_as_categorical).
  std::vector<bool> dict_everywhere_;
};

}  // namespace bento::io

#endif  // BENTO_IO_BCF_H_
