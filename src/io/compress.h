#ifndef BENTO_IO_COMPRESS_H_
#define BENTO_IO_COMPRESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace bento::io {

/// \brief A small LZ77-family byte codec used for BCF page compression
/// (the role Snappy/ZSTD play for Parquet).
///
/// Format: greedy hash-chain matching over a 64 KiB window; tokens are
/// either literal runs (tag byte 0x00..0x7F = run length - 1, then bytes)
/// or matches (tag 0x80 | (len - 4) for len in [4, 131), then 2-byte
/// little-endian distance). Self-framing: callers store sizes externally.
///
/// Compress never fails; Decompress validates framing and sizes.
std::vector<uint8_t> LzCompress(const uint8_t* data, size_t size);

Result<std::vector<uint8_t>> LzDecompress(const uint8_t* data, size_t size,
                                          size_t expected_size);

}  // namespace bento::io

#endif  // BENTO_IO_COMPRESS_H_
