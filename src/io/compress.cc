#include "io/compress.h"

#include <cstring>

namespace bento::io {

namespace {

constexpr size_t kWindow = 64 * 1024;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 130;  // (tag & 0x7F) + kMinMatch - 1 fits 0x7E
constexpr size_t kMaxLiteralRun = 128;
constexpr size_t kHashBits = 15;

inline uint32_t Hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void EmitLiterals(const uint8_t* data, size_t begin, size_t end,
                  std::vector<uint8_t>* out) {
  while (begin < end) {
    size_t run = std::min(end - begin, kMaxLiteralRun);
    out->push_back(static_cast<uint8_t>(run - 1));
    out->insert(out->end(), data + begin, data + begin + run);
    begin += run;
  }
}

}  // namespace

std::vector<uint8_t> LzCompress(const uint8_t* data, size_t size) {
  std::vector<uint8_t> out;
  out.reserve(size / 2 + 16);
  if (size < kMinMatch + 1) {
    EmitLiterals(data, 0, size, &out);
    return out;
  }

  std::vector<uint32_t> head(1u << kHashBits, UINT32_MAX);
  size_t pos = 0;
  size_t literal_start = 0;
  while (pos + kMinMatch <= size) {
    const uint32_t h = Hash4(data + pos);
    const uint32_t candidate = head[h];
    head[h] = static_cast<uint32_t>(pos);

    size_t match_len = 0;
    // Strictly less than the window: a distance of exactly kWindow (64 KiB)
    // would wrap the 16-bit encoding to 0 and corrupt the stream.
    if (candidate != UINT32_MAX && pos - candidate < kWindow &&
        pos - candidate > 0) {
      const uint8_t* a = data + candidate;
      const uint8_t* b = data + pos;
      const size_t limit = std::min(size - pos, kMaxMatch);
      while (match_len < limit && a[match_len] == b[match_len]) ++match_len;
    }

    if (match_len >= kMinMatch) {
      EmitLiterals(data, literal_start, pos, &out);
      const uint16_t dist = static_cast<uint16_t>(pos - candidate);
      out.push_back(static_cast<uint8_t>(0x80 | (match_len - kMinMatch)));
      out.push_back(static_cast<uint8_t>(dist & 0xFF));
      out.push_back(static_cast<uint8_t>(dist >> 8));
      pos += match_len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  EmitLiterals(data, literal_start, size, &out);
  return out;
}

Result<std::vector<uint8_t>> LzDecompress(const uint8_t* data, size_t size,
                                          size_t expected_size) {
  std::vector<uint8_t> out;
  out.reserve(expected_size);
  size_t pos = 0;
  while (pos < size) {
    uint8_t tag = data[pos++];
    if (tag < 0x80) {
      const size_t run = static_cast<size_t>(tag) + 1;
      if (pos + run > size) return Status::IOError("corrupt LZ literal run");
      out.insert(out.end(), data + pos, data + pos + run);
      pos += run;
    } else {
      if (pos + 2 > size) return Status::IOError("corrupt LZ match token");
      const size_t len = static_cast<size_t>(tag & 0x7F) + kMinMatch;
      const size_t dist = static_cast<size_t>(data[pos]) |
                          (static_cast<size_t>(data[pos + 1]) << 8);
      pos += 2;
      if (dist == 0 || dist > out.size()) {
        return Status::IOError("corrupt LZ match distance");
      }
      // Byte-at-a-time copy: matches may overlap their own output.
      size_t src = out.size() - dist;
      for (size_t i = 0; i < len; ++i) out.push_back(out[src + i]);
    }
  }
  if (out.size() != expected_size) {
    return Status::IOError("LZ size mismatch: got ", out.size(), ", expected ",
                           expected_size);
  }
  return out;
}

}  // namespace bento::io
