#ifndef BENTO_IO_ENCODING_H_
#define BENTO_IO_ENCODING_H_

#include <cstdint>
#include <vector>

#include "columnar/array.h"

namespace bento::io {

/// \brief Physical encodings of a BCF column page (the Parquet-like format's
/// equivalent of PLAIN / RLE / DICTIONARY / DELTA_BINARY_PACKED).
enum class Encoding : uint8_t {
  kPlain = 0,    ///< raw values (fixed width) or len-prefixed strings
  kDelta = 1,    ///< zigzag varint deltas (int64 / timestamp)
  kDict = 2,     ///< dictionary + u32 codes (string / categorical)
  kRle = 3,      ///< run-length (bool)
  kStrView = 4,  ///< (n+1) int64 offsets then chars: the in-memory string
                 ///< layout, so aligned uncompressed pages mmap zero-copy
};

/// \brief Picks the default encoding for a column the way the BCF writer
/// does: int64/timestamp -> DELTA, bool -> RLE, string/categorical -> DICT
/// when the dictionary pays for itself, else STRVIEW (strings) / PLAIN.
Encoding ChooseEncoding(const col::ArrayPtr& values);

/// \brief Picks the encoding that keeps the on-disk page bit-identical to
/// the in-memory buffer layout, so an aligned uncompressed page can be
/// served zero-copy from an mmap: PLAIN for fixed-width, STRVIEW for
/// strings. Categoricals have no flat layout and stay DICT.
Encoding MappableEncoding(const col::ArrayPtr& values);

/// \brief Encodes the value payload of `values` (validity travels
/// separately). Null slots encode as zero values / empty strings.
Result<std::vector<uint8_t>> EncodeArray(const col::ArrayPtr& values,
                                         Encoding encoding);

/// \brief Inverse of EncodeArray. `validity` may be nullptr (no nulls).
Result<col::ArrayPtr> DecodeArray(col::TypeId type, Encoding encoding,
                                  const uint8_t* data, size_t size,
                                  int64_t length, col::BufferPtr validity,
                                  int64_t null_count);

/// \brief Validates the offsets block of a STRVIEW page (monotone,
/// zero-based, in-bounds) so a corrupt page fails cleanly instead of
/// producing wild string views — required before zero-copy wrapping.
Status CheckStrViewOffsets(const uint8_t* data, size_t size, int64_t length);

// Varint helpers shared with the BCF footer writer.
void PutVarint(uint64_t v, std::vector<uint8_t>* out);
Result<uint64_t> GetVarint(const uint8_t* data, size_t size, size_t* pos);
inline uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace bento::io

#endif  // BENTO_IO_ENCODING_H_
