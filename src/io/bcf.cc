#include "io/bcf.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "columnar/bitmap.h"
#include "io/compress.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json.h"

namespace bento::io {

namespace {

constexpr char kMagic[4] = {'B', 'C', 'F', '1'};
// Pages smaller than this skip compression (header overhead dominates).
constexpr size_t kMinCompressSize = 64;

struct PendingChunk {
  uint64_t validity_offset = 0;
  uint64_t validity_size = 0;
  uint64_t data_offset = 0;
  uint64_t data_size = 0;
  uint64_t raw_size = 0;
  Encoding encoding = Encoding::kPlain;
  bool compressed = false;
  int64_t null_count = 0;
  bool has_stats = false;
  double min = 0.0;
  double max = 0.0;
};

/// Fills the chunk's zone map from the column's valid values. Bounds are
/// widened by one ulp so an int64 that doesn't round-trip through double
/// exactly can never cause a false skip.
void ComputeStats(const col::ArrayPtr& column, PendingChunk* chunk) {
  double min = 0.0, max = 0.0;
  bool any = false;
  auto update = [&](double v) {
    if (!any) {
      min = max = v;
      any = true;
    } else {
      if (v < min) min = v;
      if (v > max) max = v;
    }
  };
  switch (column->type()) {
    case col::TypeId::kInt64: {
      const int64_t* data = column->int64_data();
      for (int64_t i = 0; i < column->length(); ++i) {
        if (column->IsValid(i)) update(static_cast<double>(data[i]));
      }
      break;
    }
    case col::TypeId::kFloat64: {
      const double* data = column->float64_data();
      for (int64_t i = 0; i < column->length(); ++i) {
        if (column->IsValid(i)) update(data[i]);
      }
      break;
    }
    default:
      return;
  }
  if (!any) return;  // all-null chunk: no stats, never skipped
  chunk->has_stats = true;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  chunk->min = std::nextafter(min, -kInf);
  chunk->max = std::nextafter(max, kInf);
}

Status WriteBytes(std::FILE* f, const void* data, size_t size) {
  static obs::Counter* bytes_written =
      obs::MetricsRegistry::Global().counter("io.bcf.bytes_written");
  bytes_written->Add(size);
  if (size > 0 && std::fwrite(data, 1, size, f) != size) {
    return Status::IOError("short write");
  }
  return Status::OK();
}

/// mmap mode resolution: BENTO_BCF_MMAP=0/off/false forces buffered reads,
/// any other value forces mapping; unset defers to the per-open option.
bool ResolveUseMmap(bool option) {
  const char* env = std::getenv("BENTO_BCF_MMAP");
  if (env == nullptr || env[0] == '\0') return option;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "false") == 0);
}

bool IsFixedWidthMappable(col::TypeId type) {
  switch (type) {
    case col::TypeId::kInt64:
    case col::TypeId::kFloat64:
    case col::TypeId::kTimestamp:
    case col::TypeId::kBool:
      return true;
    default:
      return false;  // strings are len-prefixed; categoricals carry a dict
  }
}

}  // namespace

struct BcfMmapRegion {
  const uint8_t* addr = nullptr;
  uint64_t size = 0;
  int fd = -1;

  ~BcfMmapRegion() {
    if (addr != nullptr) ::munmap(const_cast<uint8_t*>(addr), size);
    if (fd >= 0) ::close(fd);
  }

  static Result<std::shared_ptr<BcfMmapRegion>> Open(const std::string& path) {
    auto region = std::make_shared<BcfMmapRegion>();
    region->fd = ::open(path.c_str(), O_RDONLY);
    if (region->fd < 0) return Status::IOError("cannot open ", path);
    struct stat st;
    if (::fstat(region->fd, &st) != 0) {
      return Status::IOError("cannot stat ", path);
    }
    region->size = static_cast<uint64_t>(st.st_size);
    if (region->size == 0) return Status::IOError(path, " is not a BCF file");
    void* addr =
        ::mmap(nullptr, region->size, PROT_READ, MAP_PRIVATE, region->fd, 0);
    if (addr == MAP_FAILED) return Status::IOError("cannot mmap ", path);
    region->addr = static_cast<const uint8_t*>(addr);
    // Column access is row-group-at-a-time, not a linear scan of the file;
    // per-group WILLNEED/DONTNEED hints below do the real prefetch work.
    ::madvise(addr, region->size, MADV_RANDOM);
    return region;
  }

  /// madvise over the page-aligned cover of [offset, offset+length).
  void Advise(uint64_t offset, uint64_t length, int advice) const {
    if (addr == nullptr || length == 0) return;
    static const uint64_t kPage =
        static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
    const uint64_t begin = offset & ~(kPage - 1);
    const uint64_t end = std::min(size, offset + length);
    if (end <= begin) return;
    ::madvise(const_cast<uint8_t*>(addr) + begin, end - begin, advice);
  }
};

struct BcfWriter::GroupMeta {
  int64_t rows = 0;
  std::vector<PendingChunk> chunks;
};

Result<std::unique_ptr<BcfWriter>> BcfWriter::Open(
    const std::string& path, const BcfWriteOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create ", path);
  auto writer = std::unique_ptr<BcfWriter>(new BcfWriter());
  writer->file_ = f;
  writer->options_ = options;
  BENTO_RETURN_NOT_OK(WriteBytes(f, kMagic, 4));
  writer->offset_ = 4;
  return writer;
}

BcfWriter::~BcfWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status BcfWriter::WriteColumnChunk(const col::ArrayPtr& column,
                                   GroupMeta* meta) {
  PendingChunk chunk;
  chunk.null_count = column->null_count();
  ComputeStats(column, &chunk);

  if (chunk.null_count > 0) {
    // Repack the validity bits of the slice into a fresh bitmap so the
    // on-disk page is self-contained (slices may not be byte-aligned).
    BENTO_ASSIGN_OR_RETURN(auto bits,
                           col::AllocateBitmap(column->length(), false));
    for (int64_t i = 0; i < column->length(); ++i) {
      if (column->IsValid(i)) col::SetBit(bits->mutable_data(), i);
    }
    chunk.validity_offset = offset_;
    chunk.validity_size = bits->size();
    BENTO_RETURN_NOT_OK(WriteBytes(file_, bits->data(), bits->size()));
    offset_ += bits->size();
  }

  chunk.encoding =
      options_.mappable ? MappableEncoding(column) : ChooseEncoding(column);
  BENTO_ASSIGN_OR_RETURN(auto encoded, EncodeArray(column, chunk.encoding));
  chunk.raw_size = encoded.size();
  if (options_.align_pages && offset_ % 8 != 0) {
    static const uint8_t kZeros[8] = {0};
    const uint64_t pad = 8 - offset_ % 8;
    BENTO_RETURN_NOT_OK(WriteBytes(file_, kZeros, pad));
    offset_ += pad;
  }
  chunk.data_offset = offset_;
  if (options_.compression && encoded.size() >= kMinCompressSize) {
    std::vector<uint8_t> packed = LzCompress(encoded.data(), encoded.size());
    if (packed.size() * 8 < encoded.size() * 7) {
      chunk.compressed = true;
      chunk.data_size = packed.size();
      BENTO_RETURN_NOT_OK(WriteBytes(file_, packed.data(), packed.size()));
      offset_ += packed.size();
    }
  }
  if (!chunk.compressed) {
    chunk.data_size = encoded.size();
    BENTO_RETURN_NOT_OK(WriteBytes(file_, encoded.data(), encoded.size()));
    offset_ += encoded.size();
  }
  meta->chunks.push_back(chunk);
  return Status::OK();
}

Status BcfWriter::AppendGroup(const col::TablePtr& slice) {
  GroupMeta meta;
  meta.rows = slice->num_rows();
  for (int c = 0; c < slice->num_columns(); ++c) {
    BENTO_RETURN_NOT_OK(WriteColumnChunk(slice->column(c), &meta));
  }
  groups_.push_back(std::move(meta));
  total_rows_ += slice->num_rows();
  return Status::OK();
}

Status BcfWriter::AppendColumnGroup(
    const col::SchemaPtr& schema, int64_t num_rows,
    const std::function<Result<col::ArrayPtr>(int)>& column_at) {
  if (finished_) return Status::Invalid("BcfWriter already finished");
  if (schema_ == nullptr) {
    schema_ = schema;
  } else if (!(*schema_ == *schema)) {
    return Status::Invalid("BcfWriter schema mismatch");
  }
  GroupMeta meta;
  meta.rows = num_rows;
  for (int c = 0; c < schema->num_fields(); ++c) {
    BENTO_ASSIGN_OR_RETURN(auto column, column_at(c));
    if (column->length() != num_rows) {
      return Status::Invalid("AppendColumnGroup: column '",
                             schema->field(c).name, "' has ", column->length(),
                             " rows, expected ", num_rows);
    }
    BENTO_RETURN_NOT_OK(WriteColumnChunk(column, &meta));
  }
  groups_.push_back(std::move(meta));
  total_rows_ += num_rows;
  return Status::OK();
}

Status BcfWriter::Append(const col::TablePtr& table) {
  if (finished_) return Status::Invalid("BcfWriter already finished");
  if (schema_ == nullptr) {
    schema_ = table->schema();
  } else if (!(*schema_ == *table->schema())) {
    return Status::Invalid("BcfWriter schema mismatch");
  }
  const int64_t group_rows =
      options_.row_group_rows > 0 ? options_.row_group_rows : table->num_rows();
  if (table->num_rows() == 0) {
    return AppendGroup(table);
  }
  for (int64_t begin = 0; begin < table->num_rows(); begin += group_rows) {
    const int64_t rows = std::min(group_rows, table->num_rows() - begin);
    BENTO_ASSIGN_OR_RETURN(auto slice, table->Slice(begin, rows));
    BENTO_RETURN_NOT_OK(AppendGroup(slice));
  }
  return Status::OK();
}

Status BcfWriter::Finish() {
  if (finished_) return Status::Invalid("BcfWriter already finished");
  finished_ = true;
  if (schema_ == nullptr) {
    return Status::Invalid("BcfWriter finished without any data");
  }

  JsonValue footer = JsonValue::Object();
  JsonValue schema_json = JsonValue::Array();
  for (const col::Field& field : schema_->fields()) {
    JsonValue fj = JsonValue::Object();
    fj.Set("name", JsonValue::Str(field.name));
    fj.Set("type", JsonValue::Int(static_cast<int>(field.type)));
    schema_json.Append(std::move(fj));
  }
  footer.Set("schema", std::move(schema_json));
  footer.Set("num_rows", JsonValue::Int(total_rows_));
  JsonValue groups_json = JsonValue::Array();
  for (const GroupMeta& meta : groups_) {
    JsonValue gj = JsonValue::Object();
    gj.Set("rows", JsonValue::Int(meta.rows));
    JsonValue cols = JsonValue::Array();
    for (const PendingChunk& chunk : meta.chunks) {
      JsonValue cj = JsonValue::Object();
      cj.Set("vo", JsonValue::Int(static_cast<int64_t>(chunk.validity_offset)));
      cj.Set("vs", JsonValue::Int(static_cast<int64_t>(chunk.validity_size)));
      cj.Set("do", JsonValue::Int(static_cast<int64_t>(chunk.data_offset)));
      cj.Set("ds", JsonValue::Int(static_cast<int64_t>(chunk.data_size)));
      cj.Set("rs", JsonValue::Int(static_cast<int64_t>(chunk.raw_size)));
      cj.Set("enc", JsonValue::Int(static_cast<int>(chunk.encoding)));
      cj.Set("z", JsonValue::Bool(chunk.compressed));
      cj.Set("nc", JsonValue::Int(chunk.null_count));
      if (chunk.has_stats) {
        cj.Set("mn", JsonValue::Number(chunk.min));
        cj.Set("mx", JsonValue::Number(chunk.max));
      }
      cols.Append(std::move(cj));
    }
    gj.Set("columns", std::move(cols));
    groups_json.Append(std::move(gj));
  }
  footer.Set("groups", std::move(groups_json));

  const std::string footer_text = footer.Dump();
  BENTO_RETURN_NOT_OK(WriteBytes(file_, footer_text.data(), footer_text.size()));
  const uint64_t footer_len = footer_text.size();
  BENTO_RETURN_NOT_OK(WriteBytes(file_, &footer_len, 8));
  BENTO_RETURN_NOT_OK(WriteBytes(file_, kMagic, 4));
  if (std::fflush(file_) != 0) return Status::IOError("BCF flush failed");
  std::fclose(file_);
  file_ = nullptr;
  return Status::OK();
}

Status WriteBcf(const col::TablePtr& table, const std::string& path,
                const BcfWriteOptions& options) {
  BENTO_TRACE_SPAN(kIo, "bcf.write");
  BENTO_ASSIGN_OR_RETURN(auto writer, BcfWriter::Open(path, options));
  BENTO_RETURN_NOT_OK(writer->Append(table));
  return writer->Finish();
}

Result<std::unique_ptr<BcfReader>> BcfReader::Open(
    const std::string& path, const BcfReadOptions& options) {
  auto reader = std::unique_ptr<BcfReader>(new BcfReader());
  reader->options_ = options;

  uint64_t file_size = 0;
  if (ResolveUseMmap(options.use_mmap)) {
    BENTO_ASSIGN_OR_RETURN(reader->map_, BcfMmapRegion::Open(path));
    file_size = reader->map_->size;
  } else {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return Status::IOError("cannot open ", path);
    // The reader's destructor closes file_, so every early return below
    // (bad magic, corrupt footer, ...) releases the descriptor.
    reader->file_ = f;
    if (std::fseek(f, 0, SEEK_END) != 0) return Status::IOError("seek failed");
    file_size = static_cast<uint64_t>(std::ftell(f));
  }
  if (file_size < 16) return Status::IOError(path, " is not a BCF file");

  char head[4];
  char tail[12];
  {
    // Raw byte reads, valid in both modes (map_ bounds were checked above).
    auto read_at = [&](uint64_t off, void* out, size_t n) -> Status {
      if (reader->map_ != nullptr) {
        std::memcpy(out, reader->map_->addr + off, n);
        return Status::OK();
      }
      if (std::fseek(reader->file_, static_cast<long>(off), SEEK_SET) != 0 ||
          std::fread(out, 1, n, reader->file_) != n) {
        return Status::IOError("cannot read BCF trailer");
      }
      return Status::OK();
    };
    BENTO_RETURN_NOT_OK(read_at(0, head, 4));
    BENTO_RETURN_NOT_OK(read_at(file_size - 12, tail, 12));
  }
  if (std::memcmp(head, kMagic, 4) != 0 ||
      std::memcmp(tail + 8, kMagic, 4) != 0) {
    return Status::IOError(path, " has no BCF magic");
  }
  uint64_t footer_len;
  std::memcpy(&footer_len, tail, 8);
  if (footer_len + 16 > file_size) {
    return Status::IOError("corrupt BCF footer length");
  }
  reader->data_end_ = file_size - 12 - footer_len;

  std::string footer_text(footer_len, '\0');
  if (reader->map_ != nullptr) {
    std::memcpy(footer_text.data(), reader->map_->addr + reader->data_end_,
                footer_len);
  } else if (std::fseek(reader->file_, static_cast<long>(reader->data_end_),
                        SEEK_SET) != 0 ||
             std::fread(footer_text.data(), 1, footer_len, reader->file_) !=
                 footer_len) {
    return Status::IOError("cannot read BCF footer");
  }
  BENTO_ASSIGN_OR_RETURN(JsonValue footer, ParseJson(footer_text));

  std::vector<col::Field> fields;
  for (const JsonValue& fj : footer.Get("schema").items()) {
    fields.push_back(col::Field{
        fj.GetString("name"),
        static_cast<col::TypeId>(fj.GetInt("type"))});
  }
  reader->schema_ = std::make_shared<col::Schema>(std::move(fields));
  reader->num_rows_ = footer.GetInt("num_rows");

  for (const JsonValue& gj : footer.Get("groups").items()) {
    RowGroup group;
    group.num_rows = gj.GetInt("rows");
    for (const JsonValue& cj : gj.Get("columns").items()) {
      ColumnChunk chunk;
      chunk.validity_offset = static_cast<uint64_t>(cj.GetInt("vo"));
      chunk.validity_size = static_cast<uint64_t>(cj.GetInt("vs"));
      chunk.data_offset = static_cast<uint64_t>(cj.GetInt("do"));
      chunk.data_size = static_cast<uint64_t>(cj.GetInt("ds"));
      chunk.raw_size = static_cast<uint64_t>(cj.GetInt("rs"));
      chunk.encoding = static_cast<Encoding>(cj.GetInt("enc"));
      chunk.compressed = cj.GetBool("z");
      chunk.null_count = cj.GetInt("nc");
      // Absent in files written before zone maps existed; those chunks
      // simply never skip.
      chunk.has_stats = cj.Has("mn") && cj.Has("mx");
      chunk.min = cj.GetNumber("mn");
      chunk.max = cj.GetNumber("mx");
      // Every page the footer points at must land inside the data region
      // [4, data_end_); overflow-safe so a hostile offset cannot wrap. A
      // corrupt header fails here with a clean error instead of a wild
      // read (or, in mmap mode, a SIGBUS past the mapping).
      const uint64_t data_lo = 4;
      auto page_ok = [&](uint64_t off, uint64_t size) {
        return size <= reader->data_end_ && off >= data_lo &&
               off <= reader->data_end_ - size;
      };
      if ((chunk.validity_size > 0 &&
           !page_ok(chunk.validity_offset, chunk.validity_size)) ||
          !page_ok(chunk.data_offset, chunk.data_size) ||
          cj.GetInt("enc") < 0 ||
          cj.GetInt("enc") > static_cast<int64_t>(Encoding::kStrView)) {
        return Status::IOError("corrupt BCF row group header");
      }
      group.columns.push_back(chunk);
    }
    if (group.columns.size() !=
        static_cast<size_t>(reader->schema_->num_fields())) {
      return Status::IOError("BCF row group column count mismatch");
    }
    reader->groups_.push_back(std::move(group));
  }

  // A string column can surface as categorical only when every group's
  // chunk is DICT-encoded; a single PLAIN chunk forces plain strings so
  // concatenated groups keep one type.
  const size_t n_fields = static_cast<size_t>(reader->schema_->num_fields());
  reader->dict_everywhere_.assign(n_fields, !reader->groups_.empty());
  for (const RowGroup& group : reader->groups_) {
    for (size_t c = 0; c < n_fields; ++c) {
      if (group.columns[c].encoding != Encoding::kDict) {
        reader->dict_everywhere_[c] = false;
      }
    }
  }
  return reader;
}

BcfReader::~BcfReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::vector<uint8_t>> BcfReader::ReadRange(uint64_t offset,
                                                  uint64_t size) {
  static obs::Counter* bytes_read =
      obs::MetricsRegistry::Global().counter("io.bcf.bytes_read");
  bytes_read->Add(size);
  std::vector<uint8_t> out(size);
  if (map_ != nullptr) {
    // Offsets were bounds-checked at Open; this is a plain copy out of the
    // mapping (used for pages that need decode and so cannot be zero-copy).
    if (size > 0) std::memcpy(out.data(), map_->addr + offset, size);
    return out;
  }
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0 ||
      (size > 0 && std::fread(out.data(), 1, size, file_) != size)) {
    return Status::IOError("BCF read failed at offset ", offset);
  }
  return out;
}

std::pair<uint64_t, uint64_t> BcfReader::GroupByteRange(
    const RowGroup& g) const {
  uint64_t lo = data_end_, hi = 0;
  for (const ColumnChunk& chunk : g.columns) {
    if (chunk.validity_size > 0) {
      lo = std::min(lo, chunk.validity_offset);
      hi = std::max(hi, chunk.validity_offset + chunk.validity_size);
    }
    if (chunk.data_size > 0) {
      lo = std::min(lo, chunk.data_offset);
      hi = std::max(hi, chunk.data_offset + chunk.data_size);
    }
  }
  if (hi < lo) return {0, 0};
  return {lo, hi};
}

void BcfReader::DoneWithGroup(int group) {
  if (map_ == nullptr || group < 0 || group >= num_row_groups()) return;
  auto [lo, hi] = GroupByteRange(groups_[static_cast<size_t>(group)]);
  map_->Advise(lo, hi - lo, MADV_DONTNEED);
}

Result<col::TablePtr> BcfReader::ReadRowGroup(
    int group, const std::vector<std::string>& columns) {
  if (group < 0 || group >= num_row_groups()) {
    return Status::IndexError("row group ", group, " out of range");
  }
  const RowGroup& g = groups_[static_cast<size_t>(group)];

  std::vector<int> selected;
  if (columns.empty()) {
    for (int c = 0; c < schema_->num_fields(); ++c) selected.push_back(c);
  } else {
    for (const std::string& name : columns) {
      int c = schema_->IndexOf(name);
      if (c < 0) return Status::KeyError("no column named '", name, "'");
      selected.push_back(c);
    }
  }

  static obs::Counter* bytes_mapped =
      obs::MetricsRegistry::Global().counter("io.bcf.bytes_mapped");
  if (map_ != nullptr) {
    // Lazy per-group prefetch: fault this group's pages in ahead of the
    // column loop instead of demand-faulting one cache miss at a time.
    auto [lo, hi] = GroupByteRange(g);
    map_->Advise(lo, hi - lo, MADV_WILLNEED);
  }

  std::vector<col::Field> fields;
  std::vector<col::ArrayPtr> out_columns;
  for (int c : selected) {
    const ColumnChunk& chunk = g.columns[static_cast<size_t>(c)];
    col::BufferPtr validity;
    if (chunk.validity_size > 0) {
      if (map_ != nullptr) {
        // Validity bitmaps are stored raw, so the on-disk page is the
        // in-memory representation: wrap it, charging nothing.
        validity = col::Buffer::WrapOwned(map_->addr + chunk.validity_offset,
                                          chunk.validity_size, map_);
        bytes_mapped->Add(chunk.validity_size);
      } else {
        BENTO_ASSIGN_OR_RETURN(
            auto raw, ReadRange(chunk.validity_offset, chunk.validity_size));
        BENTO_ASSIGN_OR_RETURN(validity,
                               col::Buffer::CopyOf(raw.data(), raw.size()));
      }
    }

    const col::TypeId type = schema_->field(c).type;
    if (map_ != nullptr && !chunk.compressed &&
        chunk.encoding == Encoding::kStrView && type == col::TypeId::kString &&
        chunk.data_offset % 8 == 0) {
      // STRVIEW pages are the in-memory layout: (n+1) aligned int64 offsets
      // then the character bytes. Validate the offsets (a corrupt page must
      // fail cleanly, not hand out wild views), then wrap both buffers.
      const uint8_t* page = map_->addr + chunk.data_offset;
      BENTO_RETURN_NOT_OK(
          CheckStrViewOffsets(page, chunk.data_size, g.num_rows));
      const uint64_t offsets_bytes = static_cast<uint64_t>(g.num_rows + 1) * 8;
      int64_t char_bytes;
      std::memcpy(&char_bytes, page + static_cast<size_t>(g.num_rows) * 8, 8);
      auto offsets = col::Buffer::WrapOwned(page, offsets_bytes, map_);
      auto chars = col::Buffer::WrapOwned(
          page + offsets_bytes, static_cast<uint64_t>(char_bytes), map_);
      bytes_mapped->Add(chunk.data_size);
      BENTO_ASSIGN_OR_RETURN(
          auto array,
          col::Array::MakeString(g.num_rows, std::move(offsets),
                                 std::move(chars), std::move(validity),
                                 chunk.null_count));
      fields.push_back(schema_->field(c));
      out_columns.push_back(std::move(array));
      continue;
    }
    if (map_ != nullptr && !chunk.compressed &&
        chunk.encoding == Encoding::kPlain && IsFixedWidthMappable(type)) {
      const uint64_t width = static_cast<uint64_t>(col::ByteWidth(type));
      const uint64_t expected = static_cast<uint64_t>(g.num_rows) * width;
      // Zero-copy needs the page to be complete and (for multi-byte types)
      // 8-byte aligned — unaligned int64/double loads are UB. Files written
      // with align_pages qualify; others fall through to the copy path.
      if (chunk.data_size >= expected &&
          (width == 1 || chunk.data_offset % 8 == 0)) {
        auto values = col::Buffer::WrapOwned(map_->addr + chunk.data_offset,
                                             expected, map_);
        bytes_mapped->Add(expected);
        BENTO_ASSIGN_OR_RETURN(
            auto array,
            col::Array::MakeFixed(type, g.num_rows, std::move(values),
                                  std::move(validity), chunk.null_count));
        fields.push_back(schema_->field(c));
        out_columns.push_back(std::move(array));
        continue;
      }
    }

    BENTO_ASSIGN_OR_RETURN(auto data,
                           ReadRange(chunk.data_offset, chunk.data_size));
    if (chunk.compressed) {
      BENTO_ASSIGN_OR_RETURN(
          data, LzDecompress(data.data(), data.size(), chunk.raw_size));
    }
    col::Field field = schema_->field(c);
    if (options_.strings_as_categorical && field.type == col::TypeId::kString &&
        dict_everywhere_[static_cast<size_t>(c)]) {
      // The DICT page's dictionary + codes become the column directly —
      // no string materialization.
      field.type = col::TypeId::kCategorical;
    }
    BENTO_ASSIGN_OR_RETURN(
        auto array,
        DecodeArray(field.type, chunk.encoding, data.data(), data.size(),
                    g.num_rows, std::move(validity), chunk.null_count));
    fields.push_back(field);
    out_columns.push_back(std::move(array));
  }
  return col::Table::Make(std::make_shared<col::Schema>(std::move(fields)),
                          std::move(out_columns));
}

bool BcfReader::GroupMayMatch(int group, const ScanPredicate& pred) const {
  if (group < 0 || group >= num_row_groups()) return true;
  const int c = schema_->IndexOf(pred.column);
  if (c < 0) return true;  // unknown column: the residual filter will error
  const ColumnChunk& chunk =
      groups_[static_cast<size_t>(group)].columns[static_cast<size_t>(c)];
  if (!chunk.has_stats) return true;
  switch (pred.cmp) {
    case ScanPredicate::Cmp::kLt:
      return chunk.min < pred.value;
    case ScanPredicate::Cmp::kLe:
      return chunk.min <= pred.value;
    case ScanPredicate::Cmp::kGt:
      return chunk.max > pred.value;
    case ScanPredicate::Cmp::kGe:
      return chunk.max >= pred.value;
    case ScanPredicate::Cmp::kEq:
      return pred.value >= chunk.min && pred.value <= chunk.max;
  }
  return true;
}

Result<col::TablePtr> BcfReader::ReadAll(
    const std::vector<std::string>& columns) {
  BENTO_TRACE_SPAN(kIo, "bcf.read_all");
  std::vector<col::TablePtr> parts;
  for (int g = 0; g < num_row_groups(); ++g) {
    BENTO_ASSIGN_OR_RETURN(auto t, ReadRowGroup(g, columns));
    parts.push_back(std::move(t));
  }
  if (parts.empty()) {
    return col::Table::MakeEmpty(schema_);
  }
  return col::ConcatTables(parts);
}

}  // namespace bento::io
