#ifndef BENTO_IO_CSV_H_
#define BENTO_IO_CSV_H_

#include <memory>
#include <string>
#include <vector>

#include "columnar/table.h"
#include "sim/parallel.h"

namespace bento::io {

struct CsvReadOptions {
  bool has_header = true;
  char delimiter = ',';
  /// Literals decoded as null (checked before type parsing).
  std::vector<std::string> null_literals = {"", "NA", "null", "NaN"};
  /// Rows examined for type inference.
  int64_t infer_rows = 1024;
  /// Batch size of the streaming chunk reader.
  int64_t chunk_rows = 64 * 1024;
  /// Explicit schema; skips inference when set. Column count must match.
  col::SchemaPtr schema;
  /// Columns to skip at parse time (scan-level projection pushdown): dropped
  /// fields are split but never type-decoded or materialized, and the result
  /// schema omits them. Unknown names are a KeyError, matching frame Drop.
  std::vector<std::string> drop_columns;
  /// Decode string columns as dictionary-encoded categoricals (int32 codes +
  /// shared dictionary, interned at parse time). Applies to inferred string
  /// columns; an explicit schema can request it per column with
  /// TypeId::kCategorical. Chunk-parallel reads build per-chunk dictionaries
  /// that ConcatTables unifies by value.
  bool dictionary_encode_strings = false;
};

struct CsvWriteOptions {
  bool header = true;
  char delimiter = ',';
};

/// \brief Buffered whole-file CSV read with type inference
/// (int64 -> float64 -> bool -> string, the Pandas-like ladder).
/// Values that fail the inferred type parse after the inference window
/// decode as null.
Result<col::TablePtr> ReadCsv(const std::string& path,
                              const CsvReadOptions& options = {});

/// \brief Memory-mapped CSV read with chunk-parallel parsing: the file is
/// split at row boundaries and chunks parse through sim::ParallelFor — the
/// DataTable model the paper credits for its I/O wins.
Result<col::TablePtr> ReadCsvMmap(const std::string& path,
                                  const CsvReadOptions& options = {},
                                  const sim::ParallelOptions& parallel = {});

/// \brief Streaming reader producing `chunk_rows`-row batches; the input of
/// the streaming engines (Polars lazy streaming, Vaex, Spark whole-stage).
class CsvChunkReader {
 public:
  static Result<std::unique_ptr<CsvChunkReader>> Open(
      const std::string& path, const CsvReadOptions& options = {});

  ~CsvChunkReader();
  CsvChunkReader(const CsvChunkReader&) = delete;
  CsvChunkReader& operator=(const CsvChunkReader&) = delete;

  const col::SchemaPtr& schema() const { return schema_; }

  /// Next batch, or nullptr at end of file.
  Result<col::TablePtr> Next();

 private:
  CsvChunkReader() = default;

  std::FILE* file_ = nullptr;
  CsvReadOptions options_;
  col::SchemaPtr schema_;
  /// Kept-column -> raw-field index when drop_columns is set (else empty).
  std::vector<size_t> field_map_;
  std::string carry_;   // partial record between buffered reads
  bool eof_ = false;
};

/// \brief Writes `table` as CSV; strings quote when they contain the
/// delimiter, quotes, or newlines.
Status WriteCsv(const col::TablePtr& table, const std::string& path,
                const CsvWriteOptions& options = {});

/// \brief Chunk-parallel stringification (through sim::ParallelFor) with a
/// serial ordered write — the multithreaded writers' shape.
Status WriteCsvParallel(const col::TablePtr& table, const std::string& path,
                        const CsvWriteOptions& options = {},
                        const sim::ParallelOptions& parallel = {});

}  // namespace bento::io

#endif  // BENTO_IO_CSV_H_
