#ifndef BENTO_SIM_DEVICE_H_
#define BENTO_SIM_DEVICE_H_

#include <cstdint>
#include <functional>

#include "sim/machine.h"
#include "util/status.h"

namespace bento::sim {

/// \brief Kernel families with distinct simulated GPU speedups.
///
/// The paper's CuDF analysis distinguishes dense numeric kernels (large
/// speedups), string kernels (moderate: irregular accesses), sorts/shuffles,
/// and inherently serial work that a GPU does not help with.
enum class KernelClass { kVector, kString, kSort, kScalar };

/// \brief Runs `fn` as one simulated device kernel.
///
/// `fn` executes for real on the host and is timed; the active session's
/// clock is adjusted so the region costs
///   host_seconds / speedup(cls) + launch_overhead
/// of virtual time. Without an active GPU session the call degenerates to
/// plain execution (no adjustment), so engine code is testable standalone.
Status DeviceKernel(KernelClass cls, const std::function<Status()>& fn);

/// \brief Charges PCIe transfer time for moving `bytes` between host and
/// device (one direction). No host work is performed.
void DeviceTransfer(uint64_t bytes);

/// \brief Reserves device memory for `bytes` against the session's VRAM
/// pool; fails with OutOfMemory at the device-memory wall. Paired with
/// DeviceFree. Without a GPU session this is a no-op returning OK.
Status DeviceReserve(uint64_t bytes);
void DeviceFree(uint64_t bytes);

/// \brief RAII device allocation used for device-resident table lifetimes.
class DeviceAllocation {
 public:
  DeviceAllocation() = default;
  ~DeviceAllocation() { Reset(); }

  DeviceAllocation(const DeviceAllocation&) = delete;
  DeviceAllocation& operator=(const DeviceAllocation&) = delete;
  DeviceAllocation(DeviceAllocation&& other) noexcept { *this = std::move(other); }
  DeviceAllocation& operator=(DeviceAllocation&& other) noexcept {
    if (this != &other) {
      Reset();
      bytes_ = other.bytes_;
      other.bytes_ = 0;
    }
    return *this;
  }

  /// Grows the allocation by `bytes`; fails at the VRAM wall.
  Status Grow(uint64_t bytes);
  void Reset();
  uint64_t bytes() const { return bytes_; }

 private:
  uint64_t bytes_ = 0;
};

}  // namespace bento::sim

#endif  // BENTO_SIM_DEVICE_H_
