#include "sim/spill.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bento::sim {

namespace {
std::atomic<uint64_t> g_spill_counter{0};
}  // namespace

Result<std::unique_ptr<SpillFile>> SpillFile::Create(const std::string& dir) {
  std::string base = dir;
  if (base.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    base = tmp != nullptr ? tmp : "/tmp";
  }
  std::string path = base + "/bento_spill_" + std::to_string(::getpid()) +
                     "_" + std::to_string(g_spill_counter.fetch_add(1)) +
                     ".bin";
  std::FILE* f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) {
    return Status::IOError("cannot create spill file at ", path);
  }
  static obs::Counter* spill_files =
      obs::MetricsRegistry::Global().counter("spill.files");
  spill_files->Increment();
  return std::unique_ptr<SpillFile>(new SpillFile(f, std::move(path)));
}

SpillFile::~SpillFile() {
  if (file_ != nullptr) std::fclose(file_);
  std::remove(path_.c_str());
}

Result<uint64_t> SpillFile::Write(const void* data, uint64_t size) {
  BENTO_TRACE_SPAN(kIo, "spill.write");
  static obs::Counter* spill_bytes =
      obs::MetricsRegistry::Global().counter("spill.bytes_written");
  spill_bytes->Add(size);
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::IOError("spill seek failed");
  }
  long offset = std::ftell(file_);
  if (offset < 0) return Status::IOError("spill tell failed");
  if (size > 0 && std::fwrite(data, 1, size, file_) != size) {
    return Status::IOError("spill write failed");
  }
  bytes_written_ += size;
  return static_cast<uint64_t>(offset);
}

Status SpillFile::Read(uint64_t offset, uint64_t size, void* out) {
  BENTO_TRACE_SPAN(kIo, "spill.read");
  static obs::Counter* spill_read_bytes =
      obs::MetricsRegistry::Global().counter("spill.bytes_read");
  spill_read_bytes->Add(size);
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IOError("spill seek failed");
  }
  if (size > 0 && std::fread(out, 1, size, file_) != size) {
    return Status::IOError("spill read failed");
  }
  return Status::OK();
}

}  // namespace bento::sim
