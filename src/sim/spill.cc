#include "sim/spill.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bento::sim {

namespace {
std::atomic<uint64_t> g_spill_counter{0};
constexpr uint64_t kFuseDisarmed = UINT64_MAX;
std::atomic<uint64_t> g_write_fuse{kFuseDisarmed};
std::atomic<uint64_t> g_read_fuse{kFuseDisarmed};

/// Burns `size` bytes off a fuse; true when the fuse just blew (the caller
/// must fail the operation cleanly instead of touching the file).
bool FuseBlows(std::atomic<uint64_t>* fuse, uint64_t size) {
  uint64_t remaining = fuse->load(std::memory_order_relaxed);
  if (remaining == kFuseDisarmed) return false;
  if (remaining < size) return true;
  fuse->store(remaining - size, std::memory_order_relaxed);
  return false;
}
}  // namespace

void SpillFile::InjectFaults(uint64_t write_bytes, uint64_t read_bytes) {
  g_write_fuse.store(write_bytes, std::memory_order_relaxed);
  g_read_fuse.store(read_bytes, std::memory_order_relaxed);
}

void SpillFile::ClearFaults() {
  g_write_fuse.store(kFuseDisarmed, std::memory_order_relaxed);
  g_read_fuse.store(kFuseDisarmed, std::memory_order_relaxed);
}

Result<std::unique_ptr<SpillFile>> SpillFile::Create(const std::string& dir) {
  std::string base = dir;
  if (base.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    base = tmp != nullptr ? tmp : "/tmp";
  }
  std::string path = base + "/bento_spill_" + std::to_string(::getpid()) +
                     "_" + std::to_string(g_spill_counter.fetch_add(1)) +
                     ".bin";
  std::FILE* f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) {
    return Status::IOError("cannot create spill file at ", path);
  }
  static obs::Counter* spill_files =
      obs::MetricsRegistry::Global().counter("spill.files");
  spill_files->Increment();
  return std::unique_ptr<SpillFile>(new SpillFile(f, std::move(path)));
}

SpillFile::~SpillFile() {
  if (file_ != nullptr) std::fclose(file_);
  std::remove(path_.c_str());
}

Result<uint64_t> SpillFile::Write(const void* data, uint64_t size) {
  BENTO_TRACE_SPAN(kIo, "spill.write");
  static obs::Counter* spill_bytes =
      obs::MetricsRegistry::Global().counter("spill.bytes_written");
  spill_bytes->Add(size);
  if (FuseBlows(&g_write_fuse, size)) {
    return Status::IOError("spill write failed (injected short write)");
  }
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::IOError("spill seek failed");
  }
  long offset = std::ftell(file_);
  if (offset < 0) return Status::IOError("spill tell failed");
  if (size > 0 && std::fwrite(data, 1, size, file_) != size) {
    return Status::IOError("spill write failed");
  }
  bytes_written_ += size;
  return static_cast<uint64_t>(offset);
}

Status SpillFile::Read(uint64_t offset, uint64_t size, void* out) {
  BENTO_TRACE_SPAN(kIo, "spill.read");
  static obs::Counter* spill_read_bytes =
      obs::MetricsRegistry::Global().counter("spill.bytes_read");
  spill_read_bytes->Add(size);
  if (FuseBlows(&g_read_fuse, size)) {
    return Status::IOError("spill read failed (injected short read)");
  }
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IOError("spill seek failed");
  }
  if (size > 0 && std::fread(out, 1, size, file_) != size) {
    return Status::IOError("spill read failed");
  }
  return Status::OK();
}

}  // namespace bento::sim
