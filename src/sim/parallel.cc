#include "sim/parallel.h"

#include <algorithm>
#include <queue>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/thread_pool.h"

namespace bento::sim {

namespace {

/// Real dispatch requires the caller to ask for it (options.mode), the
/// session — when one is installed — to allow it, and the calling thread to
/// not already be a pool worker (nested fan-out runs inline).
bool UseRealExecution(const ParallelOptions& options, const Session* session) {
  if (options.mode != ExecutionMode::kReal) return false;
  if (session != nullptr &&
      session->execution_mode() != ExecutionMode::kReal) {
    return false;
  }
  return !ThreadPool::OnWorkerThread();
}

}  // namespace

double SimulateMakespan(const std::vector<double>& durations, int workers,
                        SchedulePolicy policy, double per_task_dispatch_s) {
  if (durations.empty()) return 0.0;
  if (workers < 1) workers = 1;
  const size_t n = durations.size();

  if (policy == SchedulePolicy::kStaticBlocks) {
    // Contiguous block pre-assignment: worker w gets tasks
    // [w*n/workers, (w+1)*n/workers). The centralized dispatcher also
    // serializes one dispatch per task before any work starts.
    double dispatch = per_task_dispatch_s * static_cast<double>(n);
    double makespan = 0.0;
    for (int w = 0; w < workers; ++w) {
      size_t b = n * static_cast<size_t>(w) / static_cast<size_t>(workers);
      size_t e = n * static_cast<size_t>(w + 1) / static_cast<size_t>(workers);
      double sum = 0.0;
      for (size_t i = b; i < e; ++i) sum += durations[i];
      makespan = std::max(makespan, sum);
    }
    return makespan + dispatch;
  }

  // Greedy list scheduling in submission order: each task starts on the
  // worker that becomes free first, not earlier than its dispatch time.
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (int w = 0; w < workers; ++w) free_at.push(0.0);
  double makespan = 0.0;
  double dispatch_clock = 0.0;
  for (size_t i = 0; i < n; ++i) {
    dispatch_clock += per_task_dispatch_s;
    double start = std::max(free_at.top(), dispatch_clock);
    free_at.pop();
    double end = start + durations[i];
    free_at.push(end);
    makespan = std::max(makespan, end);
  }
  return makespan;
}

Status ParallelFor(int64_t n, const std::function<Status(int64_t)>& fn,
                   const ParallelOptions& options) {
  Session* session = Session::Current();
  int workers = options.max_workers;
  if (workers <= 0) workers = session != nullptr ? session->cores() : 1;
  // Real threads never exceed the simulated machine's core count.
  if (session != nullptr) workers = std::min(workers, session->cores());

  if (n > 1 && workers > 1 && UseRealExecution(options, session)) {
    BENTO_TRACE_SPAN(kSim, "parallel_for.real");
    static obs::Counter* real_tasks =
        obs::MetricsRegistry::Global().counter("sim.parallel_for.real_tasks");
    real_tasks->Add(static_cast<uint64_t>(n));
    return ThreadPool::Shared()->ParallelFor(n, fn, workers,
                                             MemoryPool::Current());
  }

  BENTO_TRACE_SPAN(kSim, "parallel_for.sim");
  static obs::Counter* sim_tasks =
      obs::MetricsRegistry::Global().counter("sim.parallel_for.sim_tasks");
  sim_tasks->Add(static_cast<uint64_t>(n > 0 ? n : 0));
  std::vector<double> durations;
  durations.reserve(static_cast<size_t>(n));
  Status first_error;
  for (int64_t i = 0; i < n; ++i) {
    double t0 = NowSeconds();
    Status st = fn(i);
    durations.push_back(NowSeconds() - t0);
    if (!st.ok()) {
      first_error = st;
      break;
    }
  }

  if (session != nullptr && !durations.empty()) {
    double serial = 0.0;
    for (double d : durations) serial += d;
    double makespan = SimulateMakespan(durations, workers, options.policy,
                                       options.per_task_dispatch_s);
    // Credit the overlap; if dispatch overhead makes the simulated schedule
    // slower than serial execution, this charges a penalty instead.
    session->AddTimeCredit(serial - makespan);
  }
  return first_error;
}

void ChargePenalty(double seconds) {
  Session* session = Session::Current();
  if (session != nullptr) session->AddTimeCredit(-seconds);
}

std::vector<std::pair<int64_t, int64_t>> MorselRanges(int64_t n, int workers) {
  std::vector<std::pair<int64_t, int64_t>> out;
  if (n <= 0) return out;
  if (workers < 1) workers = 1;
  int64_t chunks = (n + kMorselRows - 1) / kMorselRows;
  const int64_t cap = static_cast<int64_t>(workers) * 32;
  if (chunks > cap) chunks = cap;
  if (chunks < 1) chunks = 1;
  out.reserve(static_cast<size_t>(chunks));
  for (int64_t c = 0; c < chunks; ++c) {
    // Round boundaries down to 64-row multiples: 64 rows = 8 validity-bitmap
    // bytes, so concurrent writers of bit-packed outputs stay byte-disjoint.
    int64_t b = (n * c / chunks) & ~int64_t{63};
    int64_t e = c + 1 == chunks ? n : (n * (c + 1) / chunks) & ~int64_t{63};
    if (e > b) out.emplace_back(b, e);
  }
  static obs::Counter* ranges =
      obs::MetricsRegistry::Global().counter("pool.morsel.ranges");
  static obs::Counter* rows =
      obs::MetricsRegistry::Global().counter("pool.morsel.rows");
  ranges->Add(static_cast<uint64_t>(out.size()));
  rows->Add(static_cast<uint64_t>(n));
  return out;
}

int ResolveWorkers(const ParallelOptions& options) {
  if (options.max_workers > 0) return options.max_workers;
  Session* session = Session::Current();
  return session != nullptr ? session->cores() : 1;
}

bool WouldUseRealExecution(const ParallelOptions& options) {
  return UseRealExecution(options, Session::Current());
}

std::vector<std::pair<int64_t, int64_t>> SplitRange(int64_t n, int max_chunks,
                                                    int64_t min_rows_per_chunk) {
  std::vector<std::pair<int64_t, int64_t>> out;
  if (n <= 0) return out;
  if (max_chunks < 1) max_chunks = 1;
  if (min_rows_per_chunk < 1) min_rows_per_chunk = 1;
  // Floor division keeps the documented guarantee: whenever n >= min_rows,
  // every chunk carries at least min_rows_per_chunk rows (smaller inputs
  // collapse to a single undersized chunk).
  int64_t chunks = std::min<int64_t>(max_chunks, n / min_rows_per_chunk);
  if (chunks < 1) chunks = 1;
  for (int64_t c = 0; c < chunks; ++c) {
    int64_t b = n * c / chunks;
    int64_t e = n * (c + 1) / chunks;
    if (e > b) out.emplace_back(b, e);
  }
  return out;
}

}  // namespace bento::sim
