#include "sim/thread_pool.h"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bento::sim {

namespace {

// Index of the current thread in its owning pool, or -1 off-pool. A plain
// int (not pool identity) is enough: the process has one shared pool, and
// private pools in tests only need the "am I a worker" bit too.
thread_local int t_worker_index = -1;

int SharedPoolThreads() {
  if (const char* env = std::getenv("BENTO_POOL_THREADS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(hw > 4 ? hw : 4);
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  // Same publish-under-mutex handshake as Submit, so no worker can check
  // stop_ and then sleep through this notify.
  { std::lock_guard<std::mutex> lk(wake_mu_); }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  int target = t_worker_index;
  if (target < 0 || static_cast<size_t>(target) >= workers_.size()) {
    target = static_cast<int>(
        next_victim_.fetch_add(1, std::memory_order_relaxed) %
        workers_.size());
  }
  {
    std::lock_guard<std::mutex> lk(workers_[static_cast<size_t>(target)]->mu);
    workers_[static_cast<size_t>(target)]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  static obs::Counter* submits =
      obs::MetricsRegistry::Global().counter("pool.submits");
  submits->Increment();
  // Publish the queued increment under wake_mu_ before notifying: a sleeper
  // re-checks queued_ while holding wake_mu_, so taking the mutex here (even
  // empty) closes the window where a worker observes queued_ == 0, a submit
  // lands, and the notify fires before the worker reaches wait_for — the
  // lost wakeup that previously degraded into 50ms backstop stalls.
  { std::lock_guard<std::mutex> lk(wake_mu_); }
  wake_cv_.notify_one();
}

bool ThreadPool::PopOrSteal(int self, std::function<void()>* out) {
  // Own deque first, newest task (LIFO keeps the working set hot).
  Worker& own = *workers_[static_cast<size_t>(self)];
  {
    std::lock_guard<std::mutex> lk(own.mu);
    if (!own.tasks.empty()) {
      *out = std::move(own.tasks.back());
      own.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_acquire);
      return true;
    }
  }
  // Steal oldest task from the next non-empty victim.
  const size_t n = workers_.size();
  size_t start = next_victim_.fetch_add(1, std::memory_order_relaxed) % n;
  for (size_t k = 0; k < n; ++k) {
    size_t v = (start + k) % n;
    if (v == static_cast<size_t>(self)) continue;
    Worker& victim = *workers_[v];
    std::lock_guard<std::mutex> lk(victim.mu);
    if (!victim.tasks.empty()) {
      *out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_acquire);
      static obs::Counter* steals =
          obs::MetricsRegistry::Global().counter("pool.steals");
      steals->Increment();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(int self) {
  t_worker_index = self;
  obs::SetCurrentThreadName("pool-worker-" + std::to_string(self));
  // Open this worker's hardware counters up front so the first sampled span
  // does not pay the perf_event_open syscalls; unavailability is a clean
  // fallback, never fatal for the pool.
  (void)obs::InstallThreadSampler();
  std::function<void()> task;
  for (;;) {
    if (PopOrSteal(self, &task)) {
      BENTO_TRACE_SPAN(kSim, "pool.task");
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lk(wake_mu_);
    if (queued_.load(std::memory_order_acquire) > 0) continue;
    if (stop_.load(std::memory_order_acquire)) break;  // drained: exit
    // Submit/shutdown publish their state change under wake_mu_ before
    // notifying, so this wait cannot miss a wakeup; the timeout is a pure
    // defensive backstop, never on the latency path.
    wake_cv_.wait_for(lk, std::chrono::milliseconds(50));
  }
  t_worker_index = -1;
}

Status ThreadPool::ParallelFor(int64_t n,
                               const std::function<Status(int64_t)>& fn,
                               int parallelism, MemoryPool* memory_pool) {
  if (n <= 0) return Status::OK();
  if (parallelism > size() + 1) parallelism = size() + 1;
  if (static_cast<int64_t>(parallelism) > n) {
    parallelism = static_cast<int>(n);
  }

  // Shared state of one fan-out. Runners claim indices from `next` until
  // exhausted or a failure is observed; dynamic claiming is the real
  // counterpart of the simulator's greedy (work-stealing) schedule.
  struct Group {
    std::atomic<int64_t> next{0};
    std::atomic<bool> failed{false};
    int64_t n;
    const std::function<Status(int64_t)>* fn;
    MemoryPool* pool;
    std::mutex mu;
    std::condition_variable done;
    Status first_error;
    int pending;  // outstanding pool-side runners
  };
  Group group;
  group.n = n;
  group.fn = &fn;
  group.pool = memory_pool;
  group.pending = parallelism - 1;  // the caller is the final runner

  auto run = [](Group* g) {
    MemoryScope scope(g->pool);
    for (;;) {
      if (g->failed.load(std::memory_order_acquire)) break;
      int64_t i = g->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= g->n) break;
      Status st;
      try {
        st = (*g->fn)(i);
      } catch (const std::exception& e) {
        st = Status(StatusCode::kUnknown,
                    std::string("task threw: ") + e.what());
      } catch (...) {
        st = Status(StatusCode::kUnknown, "task threw a non-std exception");
      }
      if (!st.ok()) {
        std::lock_guard<std::mutex> lk(g->mu);
        if (g->first_error.ok()) g->first_error = st;
        g->failed.store(true, std::memory_order_release);
      }
    }
  };

  static obs::Counter* dispatches =
      obs::MetricsRegistry::Global().counter("pool.parallel_for.dispatches");
  dispatches->Add(static_cast<uint64_t>(parallelism > 0 ? parallelism : 0));
  for (int r = 0; r < parallelism - 1; ++r) {
    Submit([&group, run] {
      run(&group);
      std::lock_guard<std::mutex> lk(group.mu);
      if (--group.pending == 0) group.done.notify_all();
    });
  }
  run(&group);  // caller participates; also covers parallelism == 1
  std::unique_lock<std::mutex> lk(group.mu);
  group.done.wait(lk, [&group] { return group.pending == 0; });
  return group.first_error;
}

ThreadPool* ThreadPool::Shared() {
  // Intentionally leaked: workers must outlive static destruction order.
  static ThreadPool* pool = new ThreadPool(SharedPoolThreads());
  return pool;
}

bool ThreadPool::OnWorkerThread() { return t_worker_index >= 0; }

int ThreadPool::HardwareParallelism() {
  if (const char* env = std::getenv("BENTO_POOL_THREADS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace bento::sim
