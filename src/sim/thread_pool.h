#ifndef BENTO_SIM_THREAD_POOL_H_
#define BENTO_SIM_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/memory.h"
#include "util/status.h"

namespace bento::sim {

/// \brief Fixed-size work-stealing thread pool: the real execution backend
/// behind sim::ParallelFor's ExecutionMode::kReal.
///
/// Each worker owns a deque guarded by a small mutex. Workers pop their own
/// deque LIFO (cache-warm) and steal FIFO from a randomized victim when
/// empty — the classic Blumofe/Leiserson discipline, which is also the
/// Polars/Rayon and Ray scheduling model the simulator's kGreedy policy
/// approximates. External submitters round-robin across deques; a worker
/// submitting from inside a task pushes to its own deque.
///
/// Tasks never throw across the pool boundary: ParallelFor bodies return
/// Status, and any exception escaping a task is captured and converted to
/// StatusCode::kUnknown. Destruction drains every queued task, then joins
/// (clean shutdown: no task is ever dropped).
class ThreadPool {
 public:
  /// Creates `threads` workers (clamped below at 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// \brief Enqueues one fire-and-forget task.
  void Submit(std::function<void()> task);

  /// \brief Runs fn(0..n-1) across the pool with at most `parallelism`
  /// concurrently executing indices; blocks until every claimed index has
  /// finished. The calling thread participates as one of the runners, so a
  /// busy pool can never deadlock a caller.
  ///
  /// `memory_pool` is installed as MemoryPool::Current() on the worker
  /// threads for the duration of each task, so allocations made inside the
  /// tasks charge the caller's (session) budget.
  ///
  /// The first failing index stops further indices from being claimed
  /// (in-flight ones complete) and its Status is returned; the pool stays
  /// usable afterwards.
  Status ParallelFor(int64_t n, const std::function<Status(int64_t)>& fn,
                     int parallelism, MemoryPool* memory_pool);

  /// \brief Process-wide pool, created on first use with
  /// max(hardware_concurrency, 4) workers (override: BENTO_POOL_THREADS).
  /// The floor keeps 4-worker speedup experiments meaningful on small CI
  /// hosts; oversubscription is what the modeled libraries do too.
  static ThreadPool* Shared();

  /// \brief True when the calling thread is one of this process's pool
  /// workers. Used to run nested ParallelFor calls inline (no recursive
  /// fan-out, no deadlock).
  static bool OnWorkerThread();

  /// \brief Physical parallelism available to real execution:
  /// BENTO_POOL_THREADS when set, else hardware_concurrency (min 1). Unlike
  /// Shared()'s sizing there is no floor of 4 — kernels use this to cap
  /// hash-partition fan-out in real mode, where partitions beyond the
  /// physical core count only amplify memory traffic.
  static int HardwareParallelism();

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(int self);
  bool PopOrSteal(int self, std::function<void()>* out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> queued_{0};       // tasks sitting in deques
  std::atomic<uint64_t> next_victim_{0};  // round-robin submit / steal cursor
};

}  // namespace bento::sim

#endif  // BENTO_SIM_THREAD_POOL_H_
