#include "sim/memory.h"

#include "util/string_util.h"

namespace bento::sim {

namespace {
thread_local MemoryPool* t_current_pool = nullptr;
}  // namespace

MemoryPool* MemoryPool::Default() {
  // Intentionally leaked: trivially-destructible access at shutdown.
  static MemoryPool* pool = new MemoryPool("default", 0);
  return pool;
}

MemoryPool* MemoryPool::Current() {
  return t_current_pool != nullptr ? t_current_pool : Default();
}

Status MemoryPool::Reserve(uint64_t bytes) {
  uint64_t now = current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (budget_ != 0 && now > budget_) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
    return Status::OutOfMemory("pool '", name_, "' budget ",
                               HumanBytes(budget_), " exceeded: in use ",
                               HumanBytes(now - bytes), ", requested ",
                               HumanBytes(bytes));
  }
  // Update peak watermark.
  uint64_t prev_peak = peak_.load(std::memory_order_relaxed);
  while (now > prev_peak &&
         !peak_.compare_exchange_weak(prev_peak, now,
                                      std::memory_order_relaxed)) {
  }
  return Status::OK();
}

void MemoryPool::Release(uint64_t bytes) {
  current_.fetch_sub(bytes, std::memory_order_relaxed);
}

MemoryScope::MemoryScope(MemoryPool* pool) : previous_(t_current_pool) {
  t_current_pool = pool;
}

MemoryScope::~MemoryScope() { t_current_pool = previous_; }

}  // namespace bento::sim
