#include "sim/memory.h"

#include <execinfo.h>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace bento::sim {

namespace {
thread_local MemoryPool* t_current_pool = nullptr;
}  // namespace

MemoryPool::State::State(std::string pool_name, uint64_t budget_bytes)
    : name(std::move(pool_name)),
      budget(budget_bytes),
      track_name("mem:" + name),
      reserved_counter(obs::MetricsRegistry::Global().counter(
          "mem." + name + ".reserved_bytes")),
      released_counter(obs::MetricsRegistry::Global().counter(
          "mem." + name + ".released_bytes")),
      hwm_gauge(
          obs::MetricsRegistry::Global().gauge("mem." + name + ".peak_bytes")) {
}

MemoryPool::MemoryPool(std::string name, uint64_t budget_bytes)
    : state_(std::make_shared<State>(std::move(name), budget_bytes)) {}

MemoryPool* MemoryPool::Default() {
  // Intentionally leaked: trivially-destructible access at shutdown.
  static MemoryPool* pool = new MemoryPool("default", 0);
  return pool;
}

MemoryPool* MemoryPool::Current() {
  return t_current_pool != nullptr ? t_current_pool : Default();
}

Status MemoryPool::State::Reserve(uint64_t bytes) {
  uint64_t now = current.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (budget != 0 && now > budget) {
    current.fetch_sub(bytes, std::memory_order_relaxed);
    if (std::getenv("BENTO_OOM_TRACE") != nullptr) {
      void* frames[32];
      int n = backtrace(frames, 32);
      backtrace_symbols_fd(frames, n, 2);
    }
    return Status::OutOfMemory("pool '", name, "' budget ", HumanBytes(budget),
                               " exceeded: in use ", HumanBytes(now - bytes),
                               ", requested ", HumanBytes(bytes));
  }
  // Update peak watermark.
  uint64_t prev_peak = peak.load(std::memory_order_relaxed);
  while (now > prev_peak &&
         !peak.compare_exchange_weak(prev_peak, now,
                                     std::memory_order_relaxed)) {
  }
  reserved_counter->Add(bytes);
  hwm_gauge->UpdateMax(static_cast<int64_t>(now));
  if (obs::TracingEnabled()) {
    obs::EmitCounter(track_name, static_cast<double>(now));
  }
  return Status::OK();
}

void MemoryPool::State::Release(uint64_t bytes) {
  uint64_t now = current.fetch_sub(bytes, std::memory_order_relaxed) - bytes;
  released_counter->Add(bytes);
  if (obs::TracingEnabled()) {
    obs::EmitCounter(track_name, static_cast<double>(now));
  }
}

MemoryScope::MemoryScope(MemoryPool* pool) : previous_(t_current_pool) {
  t_current_pool = pool;
}

MemoryScope::~MemoryScope() { t_current_pool = previous_; }

}  // namespace bento::sim
