#include "sim/machine.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "obs/energy.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "sim/parallel.h"

namespace bento::sim {

namespace {
thread_local Session* t_session = nullptr;

/// obs virtual-time hook: accumulated credits of the calling thread's
/// session, so trace spans report credit-adjusted (virtual) durations.
double CurrentSessionCredit() {
  Session* s = Session::Current();
  return s != nullptr ? s->credit_seconds() : 0.0;
}

/// obs sim-cycle hook: the model clock frequency while the calling thread
/// executes under a simulated session, 0 under real execution. Spans then
/// charge deterministic virtual cycles instead of host hardware counters,
/// keeping kSimulated resource rollups bit-stable under fake clocks.
double CurrentSessionSimCycleHz() {
  Session* s = Session::Current();
  if (s == nullptr || s->execution_mode() != ExecutionMode::kSimulated) {
    return 0.0;
  }
  return obs::EnergyMeter::Global().model_hz();
}

/// BENTO_MEM_BUDGET=<bytes> clamps every session's host budget from the
/// environment — the CI lever for running the out-of-core suites under a
/// constrained RAM model regardless of the configured machine spec. A
/// budget of 0 (unbounded) stays unbounded; the env only tightens.
uint64_t ApplyBudgetEnv(uint64_t budget_bytes) {
  static const uint64_t env_budget = [] {
    const char* env = std::getenv("BENTO_MEM_BUDGET");
    if (env == nullptr || env[0] == '\0') return static_cast<uint64_t>(0);
    const double v = std::atof(env);
    return v > 0 ? static_cast<uint64_t>(v) : static_cast<uint64_t>(0);
  }();
  if (env_budget == 0 || budget_bytes == 0) return budget_bytes;
  return std::min(budget_bytes, env_budget);
}

ExecutionMode DefaultExecutionMode() {
  static const ExecutionMode mode = [] {
    const char* env = std::getenv("BENTO_EXECUTION");
    if (env != nullptr && std::strcmp(env, "real") == 0) {
      return ExecutionMode::kReal;
    }
    return ExecutionMode::kSimulated;
  }();
  return mode;
}
}  // namespace

MachineSpec MachineSpec::Laptop() {
  return MachineSpec{"laptop", 8, 16ULL << 30, std::nullopt};
}

MachineSpec MachineSpec::Workstation() {
  return MachineSpec{"workstation", 16, 64ULL << 30, std::nullopt};
}

MachineSpec MachineSpec::Server() {
  return MachineSpec{"server", 24, 128ULL << 30, std::nullopt};
}

MachineSpec MachineSpec::EvaluationHost() {
  return MachineSpec{"eval-host", 24, 196ULL << 30, GpuSpec{}};
}

MachineSpec MachineSpec::Scaled(double factor) const {
  MachineSpec out = *this;
  out.ram_bytes = static_cast<uint64_t>(static_cast<double>(ram_bytes) * factor);
  if (out.gpu.has_value()) {
    out.gpu->vram_bytes =
        static_cast<uint64_t>(static_cast<double>(out.gpu->vram_bytes) * factor);
  }
  return out;
}

Session::Session(MachineSpec spec)
    : spec_(std::move(spec)),
      host_pool_("host:" + spec_.name, ApplyBudgetEnv(spec_.ram_bytes)),
      device_pool_(spec_.gpu.has_value()
                       ? std::make_unique<MemoryPool>(
                             "device:" + spec_.name,
                             static_cast<uint64_t>(
                                 static_cast<double>(spec_.gpu->vram_bytes) *
                                 spec_.gpu->managed_oversubscription))
                       : nullptr),
      scope_(&host_pool_),
      previous_(t_session),
      execution_mode_(DefaultExecutionMode()) {
  t_session = this;
  obs::SetVirtualCreditHook(&CurrentSessionCredit);
  obs::SetSimCycleHzHook(&CurrentSessionSimCycleHz);
}

Session::~Session() { t_session = previous_; }

Session* Session::Current() { return t_session; }

double CostScale() {
  static const double scale = [] {
    const char* env = std::getenv("BENTO_SCALE");
    if (env != nullptr) {
      double v = std::atof(env);
      if (v > 0) return v;
    }
    return 0.001;
  }();
  return scale;
}

double NowSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
}

VirtualTimer::VirtualTimer()
    : wall_start_(NowSeconds()),
      credit_start_(Session::Current() != nullptr
                        ? Session::Current()->credit_seconds()
                        : 0.0) {}

double VirtualTimer::Elapsed() const {
  double wall = NowSeconds() - wall_start_;
  double credit = 0.0;
  if (Session::Current() != nullptr) {
    credit = Session::Current()->credit_seconds() - credit_start_;
  }
  double v = wall - credit;
  return v > 0.0 ? v : 0.0;
}

}  // namespace bento::sim
