#ifndef BENTO_SIM_MEMORY_H_
#define BENTO_SIM_MEMORY_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace bento::sim {

/// \brief Byte-accounting pool with an optional hard budget.
///
/// Every columnar Buffer charges its bytes against a pool; the pool plays the
/// role that the Docker cgroup memory limit plays in the paper's Table IV
/// machine configurations: when a reservation would exceed the budget, the
/// allocation fails with StatusCode::kOutOfMemory, which engines surface as
/// the OoM outcomes of Figures 3/8 and Table V.
///
/// Thread-safe; counters are atomics.
class MemoryPool {
 public:
  /// budget_bytes == 0 means unbounded.
  explicit MemoryPool(std::string name = "pool", uint64_t budget_bytes = 0)
      : name_(std::move(name)), budget_(budget_bytes) {}

  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  /// \brief The process-wide unbounded pool.
  static MemoryPool* Default();

  /// \brief The pool installed by the innermost MemoryScope on this thread,
  /// or Default() when none is installed.
  static MemoryPool* Current();

  /// \brief Charges `bytes`; fails with OutOfMemory when over budget.
  Status Reserve(uint64_t bytes);

  /// \brief Returns previously reserved bytes.
  void Release(uint64_t bytes);

  uint64_t bytes_allocated() const { return current_.load(std::memory_order_relaxed); }
  uint64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  uint64_t budget() const { return budget_; }
  const std::string& name() const { return name_; }

  void set_budget(uint64_t bytes) { budget_ = bytes; }

  /// \brief Resets the peak watermark to the current usage (between runs).
  void ResetPeak() { peak_.store(current_.load()); }

 private:
  std::string name_;
  uint64_t budget_;
  std::atomic<uint64_t> current_{0};
  std::atomic<uint64_t> peak_{0};
};

/// \brief RAII installation of a pool as MemoryPool::Current() for this
/// thread. Scopes nest; destruction restores the previous pool.
class MemoryScope {
 public:
  explicit MemoryScope(MemoryPool* pool);
  ~MemoryScope();

  MemoryScope(const MemoryScope&) = delete;
  MemoryScope& operator=(const MemoryScope&) = delete;

 private:
  MemoryPool* previous_;
};

}  // namespace bento::sim

#endif  // BENTO_SIM_MEMORY_H_
