#ifndef BENTO_SIM_MEMORY_H_
#define BENTO_SIM_MEMORY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace bento::obs {
class Counter;
class Gauge;
}  // namespace bento::obs

namespace bento::sim {

/// \brief Byte-accounting pool with an optional hard budget.
///
/// Every columnar Buffer charges its bytes against a pool; the pool plays the
/// role that the Docker cgroup memory limit plays in the paper's Table IV
/// machine configurations: when a reservation would exceed the budget, the
/// allocation fails with StatusCode::kOutOfMemory, which engines surface as
/// the OoM outcomes of Figures 3/8 and Table V.
///
/// The accounting lives in a shared State co-owned by every buffer charged
/// against the pool: a table that escapes its session (cached test fixtures,
/// results compared across runs) can still release its bytes safely after
/// the pool object itself is gone.
///
/// Thread-safe; counters are atomics.
class MemoryPool {
 public:
  /// Reference-counted accounting core. Reserve/Release mirror the pool's;
  /// buffers call Release through their shared_ptr at destruction.
  class State {
   public:
    State(std::string name, uint64_t budget_bytes);

    Status Reserve(uint64_t bytes);
    void Release(uint64_t bytes);

    std::string name;
    uint64_t budget;
    std::atomic<uint64_t> current{0};
    std::atomic<uint64_t> peak{0};
    // Allocation-timeline instrumentation, resolved once at construction:
    // cumulative reserve/release byte counters, a high-water-mark gauge, and
    // the "mem:<name>" counter track sampled while tracing is enabled.
    std::string track_name;
    obs::Counter* reserved_counter;
    obs::Counter* released_counter;
    obs::Gauge* hwm_gauge;
  };

  /// budget_bytes == 0 means unbounded.
  explicit MemoryPool(std::string name = "pool", uint64_t budget_bytes = 0);

  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  /// \brief The process-wide unbounded pool.
  static MemoryPool* Default();

  /// \brief The pool installed by the innermost MemoryScope on this thread,
  /// or Default() when none is installed.
  static MemoryPool* Current();

  /// \brief Charges `bytes`; fails with OutOfMemory when over budget.
  Status Reserve(uint64_t bytes) { return state_->Reserve(bytes); }

  /// \brief Returns previously reserved bytes.
  void Release(uint64_t bytes) { state_->Release(bytes); }

  uint64_t bytes_allocated() const {
    return state_->current.load(std::memory_order_relaxed);
  }
  uint64_t peak_bytes() const {
    return state_->peak.load(std::memory_order_relaxed);
  }
  uint64_t budget() const { return state_->budget; }
  const std::string& name() const { return state_->name; }

  /// \brief Admission headroom: bytes that can still be reserved before the
  /// budget trips (UINT64_MAX when unbounded). Out-of-core operators consult
  /// this to decide when to start spilling rather than waiting for a hard
  /// OutOfMemory from the next allocation.
  uint64_t HeadroomBytes() const {
    if (state_->budget == 0) return UINT64_MAX;
    const uint64_t current = state_->current.load(std::memory_order_relaxed);
    return current >= state_->budget ? 0 : state_->budget - current;
  }

  void set_budget(uint64_t bytes) { state_->budget = bytes; }

  /// \brief Resets the peak watermark to the current usage (between runs).
  void ResetPeak() { state_->peak.store(state_->current.load()); }

  /// \brief The shared accounting state; buffers keep it alive past the
  /// pool so their destructors never release into freed memory.
  const std::shared_ptr<State>& state() const { return state_; }

 private:
  std::shared_ptr<State> state_;
};

/// \brief RAII installation of a pool as MemoryPool::Current() for this
/// thread. Scopes nest; destruction restores the previous pool.
class MemoryScope {
 public:
  explicit MemoryScope(MemoryPool* pool);
  ~MemoryScope();

  MemoryScope(const MemoryScope&) = delete;
  MemoryScope& operator=(const MemoryScope&) = delete;

 private:
  MemoryPool* previous_;
};

}  // namespace bento::sim

#endif  // BENTO_SIM_MEMORY_H_
