#ifndef BENTO_SIM_SPILL_H_
#define BENTO_SIM_SPILL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "util/result.h"

namespace bento::sim {

/// \brief A temporary on-disk byte store used by out-of-core operators
/// (the SparkSQL engine's spill path). Bytes written here are *not* charged
/// to any MemoryPool, which is exactly the point: spilling converts tracked
/// RAM into untracked disk, letting pipelines finish under small budgets.
///
/// The backing file is unlinked on destruction.
class SpillFile {
 public:
  /// Creates a spill file in `dir` (defaults to the system temp directory).
  static Result<std::unique_ptr<SpillFile>> Create(const std::string& dir = "");

  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Appends `size` bytes; returns the offset they were written at.
  Result<uint64_t> Write(const void* data, uint64_t size);

  /// Reads `size` bytes from `offset` into `out`.
  Status Read(uint64_t offset, uint64_t size, void* out);

  uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

  /// Test-only fault injection, process-wide: after `write_bytes` more bytes
  /// have been written (resp. `read_bytes` read) across all spill files, the
  /// next Write/Read fails with a clean IOError — the short-write/short-read
  /// model for proving spill consumers never surface corrupt frames.
  /// UINT64_MAX disarms a fuse.
  static void InjectFaults(uint64_t write_bytes, uint64_t read_bytes);
  static void ClearFaults();

 private:
  SpillFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  std::FILE* file_;
  std::string path_;
  uint64_t bytes_written_ = 0;
};

}  // namespace bento::sim

#endif  // BENTO_SIM_SPILL_H_
