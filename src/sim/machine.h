#ifndef BENTO_SIM_MACHINE_H_
#define BENTO_SIM_MACHINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "sim/memory.h"

namespace bento::sim {

enum class ExecutionMode;  // sim/parallel.h

/// \brief Cost model of the simulated accelerator (the paper's NVIDIA T4).
///
/// Kernels still execute for real on the host; the session charges virtual
/// time `host_seconds / speedup(class) + launch_overhead` and PCIe transfer
/// time `bytes / bandwidth` per direction. Device allocations are charged to
/// a capacity-limited device pool, reproducing the 16 GB device-memory wall.
struct GpuSpec {
  uint64_t vram_bytes = 16ULL << 30;
  /// Unified-memory oversubscription factor: device allocations may exceed
  /// VRAM up to vram_bytes * managed_oversubscription (RMM managed memory,
  /// the common CuDF deployment for near-VRAM datasets); beyond that, OoM.
  double managed_oversubscription = 2.0;
  double pcie_gbps = 12.0;              ///< effective host<->device GiB/s
  double launch_overhead_us = 10.0;     ///< per-kernel launch latency
  double speedup_vector = 64.0;         ///< dense numeric kernels
  double speedup_string = 8.0;          ///< irregular string kernels
  double speedup_sort = 24.0;           ///< sort / shuffle-like kernels
  double speedup_scalar = 0.5;          ///< inherently serial work (slower)
};

/// \brief A single-machine configuration: the paper's Table IV rows plus the
/// evaluation server. RAM is the budget of the session's host memory pool;
/// `cores` bounds the virtual concurrency used for makespan simulation.
struct MachineSpec {
  std::string name = "server";
  int cores = 24;
  uint64_t ram_bytes = 128ULL << 30;
  std::optional<GpuSpec> gpu;

  static MachineSpec Laptop();       ///< 8 CPUs, 16 GB (Table IV)
  static MachineSpec Workstation();  ///< 16 CPUs, 64 GB (Table IV)
  static MachineSpec Server();       ///< 24 CPUs, 128 GB (Table IV)
  /// The paper's full evaluation host: 24 threads, 196 GB, T4 GPU.
  static MachineSpec EvaluationHost();

  /// Returns a copy with every byte budget scaled by `factor`, matching a
  /// dataset scale factor so OoM crossovers happen at the same sample
  /// percentages as at full scale.
  MachineSpec Scaled(double factor) const;
};

/// \brief One simulated execution environment: host pool, optional device
/// pool, and a virtual clock.
///
/// Virtual time = wall time spent inside the session minus "time credits"
/// granted by the parallel simulator (work that C virtual cores would have
/// overlapped) plus penalties (e.g. PCIe transfers). Engines interact with
/// the session only through sim::ParallelFor / sim::Device helpers, so code
/// without an active session still runs correctly at wall-clock speed.
class Session {
 public:
  explicit Session(MachineSpec spec);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  static Session* Current();

  const MachineSpec& spec() const { return spec_; }
  MemoryPool* host_pool() { return &host_pool_; }
  MemoryPool* device_pool() { return device_pool_.get(); }
  bool has_gpu() const { return device_pool_ != nullptr; }

  /// \brief Positive credit shrinks virtual time (parallel overlap);
  /// negative credit grows it (modeled overheads such as transfers).
  void AddTimeCredit(double seconds) { credit_seconds_ += seconds; }
  double credit_seconds() const { return credit_seconds_; }

  int cores() const { return spec_.cores; }

  /// How ParallelFor executes under this session: kSimulated (default)
  /// serializes tasks and grants virtual-time credits; kReal dispatches them
  /// onto the work-stealing ThreadPool. The default can be flipped process-
  /// wide with BENTO_EXECUTION=real. Engines additionally opt in per
  /// ParallelOptions (see sim/parallel.h); both must agree for real dispatch.
  ExecutionMode execution_mode() const { return execution_mode_; }
  void set_execution_mode(ExecutionMode mode) { execution_mode_ = mode; }

  /// Isolated-measurement mode (the paper's function-core setting): each
  /// preparator is measured alone and repeatedly, so allocator/GC churn
  /// accumulates instead of being reclaimed between ops. Cost models that
  /// depend on reclamation pacing (the Pandas row-Series staging) read this.
  void set_isolated_measurement(bool v) { isolated_measurement_ = v; }
  bool isolated_measurement() const { return isolated_measurement_; }

 private:
  MachineSpec spec_;
  MemoryPool host_pool_;
  std::unique_ptr<MemoryPool> device_pool_;
  MemoryScope scope_;
  Session* previous_;
  ExecutionMode execution_mode_;
  double credit_seconds_ = 0.0;
  bool isolated_measurement_ = false;
};

/// \brief Measures virtual elapsed time across a region: wall time minus the
/// credits accrued by the current session during the region.
class VirtualTimer {
 public:
  VirtualTimer();

  /// Seconds of virtual time since construction.
  double Elapsed() const;

 private:
  double wall_start_;
  double credit_start_;
};

/// \brief Monotonic wall clock in seconds.
double NowSeconds();

/// \brief The dataset scale factor of the current experiment (BENTO_SCALE,
/// default 0.001 of the paper's sizes). Fixed real-world costs that do not
/// shrink with the data (JVM/plan dispatch, kernel-launch latencies) are
/// multiplied by this so the *shape* of overhead-vs-work matches the
/// full-size evaluation at any scale.
double CostScale();

}  // namespace bento::sim

#endif  // BENTO_SIM_MACHINE_H_
