#include "sim/device.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/parallel.h"

namespace bento::sim {

namespace {

const GpuSpec* ActiveGpu() {
  Session* session = Session::Current();
  if (session == nullptr || !session->spec().gpu.has_value()) return nullptr;
  return &session->spec().gpu.value();
}

double SpeedupFor(const GpuSpec& gpu, KernelClass cls) {
  switch (cls) {
    case KernelClass::kVector:
      return gpu.speedup_vector;
    case KernelClass::kString:
      return gpu.speedup_string;
    case KernelClass::kSort:
      return gpu.speedup_sort;
    case KernelClass::kScalar:
      return gpu.speedup_scalar;
  }
  return 1.0;
}

}  // namespace

Status DeviceKernel(KernelClass cls, const std::function<Status()>& fn) {
  const GpuSpec* gpu = ActiveGpu();
  if (gpu == nullptr) return fn();

  BENTO_TRACE_SPAN(kSim, "device_kernel");
  double t0 = NowSeconds();
  Status st = fn();
  double host_seconds = NowSeconds() - t0;

  double speedup = SpeedupFor(*gpu, cls);
  if (speedup <= 0.0) speedup = 1.0;
  double device_seconds =
      host_seconds / speedup + gpu->launch_overhead_us * 1e-6;
  Session::Current()->AddTimeCredit(host_seconds - device_seconds);
  return st;
}

void DeviceTransfer(uint64_t bytes) {
  const GpuSpec* gpu = ActiveGpu();
  if (gpu == nullptr || bytes == 0) return;
  BENTO_TRACE_SPAN(kSim, "pcie_transfer");
  static obs::Counter* pcie_bytes =
      obs::MetricsRegistry::Global().counter("device.pcie_bytes");
  pcie_bytes->Add(bytes);
  double seconds = static_cast<double>(bytes) /
                   (gpu->pcie_gbps * 1024.0 * 1024.0 * 1024.0);
  ChargePenalty(seconds);
}

Status DeviceReserve(uint64_t bytes) {
  Session* session = Session::Current();
  if (session == nullptr || session->device_pool() == nullptr) {
    return Status::OK();
  }
  return session->device_pool()->Reserve(bytes);
}

void DeviceFree(uint64_t bytes) {
  Session* session = Session::Current();
  if (session == nullptr || session->device_pool() == nullptr) return;
  session->device_pool()->Release(bytes);
}

Status DeviceAllocation::Grow(uint64_t bytes) {
  BENTO_RETURN_NOT_OK(DeviceReserve(bytes));
  bytes_ += bytes;
  return Status::OK();
}

void DeviceAllocation::Reset() {
  if (bytes_ > 0) {
    DeviceFree(bytes_);
    bytes_ = 0;
  }
}

}  // namespace bento::sim
