#ifndef BENTO_SIM_PARALLEL_H_
#define BENTO_SIM_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/machine.h"
#include "util/status.h"

namespace bento::sim {

/// \brief How tasks are mapped onto the virtual workers.
///
/// kGreedy models a work-stealing / bottom-up scheduler (the paper's Ray):
/// each task goes to the worker that frees up first. kStaticBlocks models a
/// centralized scheduler that pre-assigns contiguous task blocks (the
/// paper's Dask engine in Modin): skewed task durations inflate the makespan.
enum class SchedulePolicy { kGreedy, kStaticBlocks };

/// \brief Whether ParallelFor models concurrency or uses it.
///
/// kSimulated runs tasks serially and grants the active Session a
/// virtual-time credit for the overlap the simulated machine would achieve —
/// the paper-faithful mode every engine defaults to. kReal dispatches tasks
/// onto the process-wide work-stealing ThreadPool, clamped to the simulated
/// machine's core count, so kernels genuinely run "as fast as the hardware
/// allows". Both modes produce bit-identical results (tasks write disjoint
/// output slots and merges are order-deterministic); the differential test
/// suite asserts this for every engine.
enum class ExecutionMode { kSimulated, kReal };

struct ParallelOptions {
  SchedulePolicy policy = SchedulePolicy::kGreedy;
  /// Dispatch latency charged per task on the (serial) scheduler; models
  /// centralized-scheduler overhead. Seconds.
  double per_task_dispatch_s = 0.0;
  /// Cap on workers; 0 means the active session's core count (or 1 when no
  /// session is active).
  int max_workers = 0;
  /// The engine's requested execution backend. kReal only takes effect when
  /// the active Session is also in kReal mode (or when no session is
  /// installed — standalone kernel use); otherwise the schedule is
  /// simulated, so a multi-threaded engine model stays paper-faithful by
  /// default and opts into real threads per session.
  ExecutionMode mode = ExecutionMode::kSimulated;
};

/// \brief Executes `n` independent tasks, either simulating their parallel
/// schedule or actually running them on the work-stealing thread pool.
///
/// Simulated mode: tasks run serially on the calling thread. Each task's
/// wall time is measured; the makespan that `max_workers` virtual workers
/// would achieve is computed, and the active Session is granted a time
/// credit equal to the overlap (total_serial_time - makespan), so
/// VirtualTimer reports the simulated parallel runtime. The first task error
/// aborts the loop and is returned; the makespan credit for completed tasks
/// is still recorded.
///
/// Real mode (see ExecutionMode): tasks are claimed dynamically by up to
/// `workers` runners on the shared ThreadPool; the caller's MemoryPool is
/// installed on the workers so allocations still charge the session budget.
/// No time credit is granted — wall time genuinely shrinks instead. Nested
/// ParallelFor calls issued from inside a task run serially inline.
Status ParallelFor(int64_t n, const std::function<Status(int64_t)>& fn,
                   const ParallelOptions& options = {});

/// \brief Pure makespan computation (exposed for tests): schedules
/// `durations` in order onto `workers` workers under `policy`.
double SimulateMakespan(const std::vector<double>& durations, int workers,
                        SchedulePolicy policy,
                        double per_task_dispatch_s = 0.0);

/// \brief Charges a pure virtual-time penalty (e.g. modeled overheads with
/// no host work) to the active session. No-op without a session.
void ChargePenalty(double seconds);

/// \brief Splits `n` rows into roughly even [begin, end) chunks of at most
/// `max_chunks` pieces with at least `min_rows_per_chunk` rows each.
std::vector<std::pair<int64_t, int64_t>> SplitRange(int64_t n, int max_chunks,
                                                    int64_t min_rows_per_chunk);

}  // namespace bento::sim

#endif  // BENTO_SIM_PARALLEL_H_
