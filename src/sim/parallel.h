#ifndef BENTO_SIM_PARALLEL_H_
#define BENTO_SIM_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/machine.h"
#include "util/status.h"

namespace bento::sim {

/// \brief How tasks are mapped onto the virtual workers.
///
/// kGreedy models a work-stealing / bottom-up scheduler (the paper's Ray):
/// each task goes to the worker that frees up first. kStaticBlocks models a
/// centralized scheduler that pre-assigns contiguous task blocks (the
/// paper's Dask engine in Modin): skewed task durations inflate the makespan.
enum class SchedulePolicy { kGreedy, kStaticBlocks };

/// \brief Whether ParallelFor models concurrency or uses it.
///
/// kSimulated runs tasks serially and grants the active Session a
/// virtual-time credit for the overlap the simulated machine would achieve —
/// the paper-faithful mode every engine defaults to. kReal dispatches tasks
/// onto the process-wide work-stealing ThreadPool, clamped to the simulated
/// machine's core count, so kernels genuinely run "as fast as the hardware
/// allows". Both modes produce bit-identical results (tasks write disjoint
/// output slots and merges are order-deterministic); the differential test
/// suite asserts this for every engine.
enum class ExecutionMode { kSimulated, kReal };

struct ParallelOptions {
  SchedulePolicy policy = SchedulePolicy::kGreedy;
  /// Dispatch latency charged per task on the (serial) scheduler; models
  /// centralized-scheduler overhead. Seconds.
  double per_task_dispatch_s = 0.0;
  /// Cap on workers; 0 means the active session's core count (or 1 when no
  /// session is active).
  int max_workers = 0;
  /// The engine's requested execution backend. kReal only takes effect when
  /// the active Session is also in kReal mode (or when no session is
  /// installed — standalone kernel use); otherwise the schedule is
  /// simulated, so a multi-threaded engine model stays paper-faithful by
  /// default and opts into real threads per session.
  ExecutionMode mode = ExecutionMode::kSimulated;
};

/// \brief Executes `n` independent tasks, either simulating their parallel
/// schedule or actually running them on the work-stealing thread pool.
///
/// Simulated mode: tasks run serially on the calling thread. Each task's
/// wall time is measured; the makespan that `max_workers` virtual workers
/// would achieve is computed, and the active Session is granted a time
/// credit equal to the overlap (total_serial_time - makespan), so
/// VirtualTimer reports the simulated parallel runtime. The first task error
/// aborts the loop and is returned; the makespan credit for completed tasks
/// is still recorded.
///
/// Real mode (see ExecutionMode): tasks are claimed dynamically by up to
/// `workers` runners on the shared ThreadPool; the caller's MemoryPool is
/// installed on the workers so allocations still charge the session budget.
/// No time credit is granted — wall time genuinely shrinks instead. Nested
/// ParallelFor calls issued from inside a task run serially inline.
Status ParallelFor(int64_t n, const std::function<Status(int64_t)>& fn,
                   const ParallelOptions& options = {});

/// \brief Pure makespan computation (exposed for tests): schedules
/// `durations` in order onto `workers` workers under `policy`.
double SimulateMakespan(const std::vector<double>& durations, int workers,
                        SchedulePolicy policy,
                        double per_task_dispatch_s = 0.0);

/// \brief Charges a pure virtual-time penalty (e.g. modeled overheads with
/// no host work) to the active session. No-op without a session.
void ChargePenalty(double seconds);

/// \brief Splits `n` rows into roughly even [begin, end) chunks of at most
/// `max_chunks` pieces with at least `min_rows_per_chunk` rows each.
std::vector<std::pair<int64_t, int64_t>> SplitRange(int64_t n, int max_chunks,
                                                    int64_t min_rows_per_chunk);

/// Target rows per morsel for data-parallel kernel fan-outs. Sized so a
/// morsel's working set stays cache-friendly while the per-task dispatch
/// cost (~µs) is amortized over tens of thousands of rows; small inputs
/// produce few (or one) morsels instead of paying an n/workers fan-out.
inline constexpr int64_t kMorselRows = 65536;

/// \brief Splits `n` rows into ~kMorselRows-sized morsels (not n/workers):
/// chunk count scales with the data, capped at 32 tasks per worker so huge
/// inputs cannot flood the pool. Chunk boundaries are multiples of 64 rows
/// (except the final end), so tasks that write validity bitmaps touch
/// disjoint bytes. Emits pool.morsel.{ranges,rows} counters.
std::vector<std::pair<int64_t, int64_t>> MorselRanges(int64_t n, int workers);

/// \brief Worker count `options` resolves to: max_workers when positive,
/// else the active session's core count, else 1.
int ResolveWorkers(const ParallelOptions& options);

/// \brief True when a ParallelFor issued right now with `options` would
/// dispatch onto the real thread pool (kReal requested, session permitting,
/// not already on a worker thread). Kernels use this to size fan-outs for
/// the physical machine in real mode while keeping the virtual-core fan-out
/// in simulated mode.
bool WouldUseRealExecution(const ParallelOptions& options);

}  // namespace bento::sim

#endif  // BENTO_SIM_PARALLEL_H_
