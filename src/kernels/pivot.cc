#include "kernels/pivot.h"

#include <cmath>

#include "columnar/builder.h"
#include "kernels/flat_index.h"
#include "kernels/groupby.h"
#include "kernels/row_hash.h"
#include "kernels/selection.h"

namespace bento::kern {

Result<TablePtr> PivotTable(const TablePtr& table, const std::string& index,
                            const std::string& columns,
                            const std::string& values, AggKind agg) {
  BENTO_ASSIGN_OR_RETURN(auto index_col, table->GetColumn(index));
  BENTO_ASSIGN_OR_RETURN(auto columns_col, table->GetColumn(columns));
  BENTO_ASSIGN_OR_RETURN(auto values_col, table->GetColumn(values));
  if (!col::IsNumeric(values_col->type()) &&
      values_col->type() != TypeId::kBool) {
    return Status::TypeError("pivot values column must be numeric");
  }

  // Axis discovery in first-seen order through flat groupers: cells group
  // by value equality (nulls form their own group), no per-row
  // stringification — labels stringify once per distinct column value.
  BENTO_ASSIGN_OR_RETURN(auto row_hashes, HashRows(table, {index}));
  BENTO_ASSIGN_OR_RETURN(auto col_hashes, HashRows(table, {columns}));
  BENTO_ASSIGN_OR_RETURN(
      auto row_equal, RowEquality::Make(table, {index}, table, {index}));
  BENTO_ASSIGN_OR_RETURN(
      auto col_equal, RowEquality::Make(table, {columns}, table, {columns}));

  const int64_t n = table->num_rows();
  FlatGrouper row_groups(n / 8 + 16);
  FlatGrouper col_groups;
  std::vector<int> row_of(static_cast<size_t>(n));
  std::vector<int> col_of(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    row_of[static_cast<size_t>(i)] = static_cast<int>(row_groups.FindOrInsert(
        row_hashes[static_cast<size_t>(i)], i,
        [&](int64_t a, int64_t b) { return row_equal.Equal(a, b); }));
    col_of[static_cast<size_t>(i)] = static_cast<int>(col_groups.FindOrInsert(
        col_hashes[static_cast<size_t>(i)], i,
        [&](int64_t a, int64_t b) { return col_equal.Equal(a, b); }));
  }
  const std::vector<int64_t>& row_representatives = row_groups.representatives();
  std::vector<std::string> col_labels;
  col_labels.reserve(static_cast<size_t>(col_groups.num_groups()));
  for (int64_t rep : col_groups.representatives()) {
    col_labels.push_back(columns_col->IsNull(rep) ? "null"
                                                  : columns_col->ValueToString(rep));
  }

  // Accumulate cells.
  struct Cell {
    double sum = 0.0, sum_sq = 0.0, min = 0.0, max = 0.0;
    int64_t count = 0;
  };
  const size_t n_rows = row_representatives.size();
  const size_t n_cols = col_labels.size();
  std::vector<Cell> cells(n_rows * n_cols);
  for (int64_t i = 0; i < n; ++i) {
    if (values_col->IsNull(i)) continue;
    double v = values_col->type() == TypeId::kFloat64
                   ? values_col->float64_data()[i]
               : values_col->type() == TypeId::kBool
                   ? (values_col->bool_data()[i] != 0 ? 1.0 : 0.0)
                   : static_cast<double>(values_col->int64_data()[i]);
    if (std::isnan(v)) continue;
    Cell& c = cells[static_cast<size_t>(row_of[static_cast<size_t>(i)]) * n_cols +
                    static_cast<size_t>(col_of[static_cast<size_t>(i)])];
    if (c.count == 0) {
      c.min = v;
      c.max = v;
    } else {
      c.min = std::min(c.min, v);
      c.max = std::max(c.max, v);
    }
    c.sum += v;
    c.sum_sq += v * v;
    ++c.count;
  }

  // Output: index column (representatives) + one float column per label.
  BENTO_ASSIGN_OR_RETURN(auto idx_table, table->SelectColumns({index}));
  BENTO_ASSIGN_OR_RETURN(auto idx_out, TakeTable(idx_table, row_representatives));

  std::vector<col::Field> fields = idx_out->schema()->fields();
  std::vector<ArrayPtr> out_columns = idx_out->columns();
  for (size_t c = 0; c < n_cols; ++c) {
    col::Float64Builder b;
    b.Reserve(static_cast<int64_t>(n_rows));
    for (size_t r = 0; r < n_rows; ++r) {
      const Cell& cell = cells[r * n_cols + c];
      if (cell.count == 0) {
        b.AppendNull();
        continue;
      }
      double v = 0.0;
      switch (agg) {
        case AggKind::kSum:
          v = cell.sum;
          break;
        case AggKind::kMean:
          v = cell.sum / static_cast<double>(cell.count);
          break;
        case AggKind::kMin:
          v = cell.min;
          break;
        case AggKind::kMax:
          v = cell.max;
          break;
        case AggKind::kCount:
          v = static_cast<double>(cell.count);
          break;
        case AggKind::kStd: {
          if (cell.count < 2) {
            b.AppendNull();
            continue;
          }
          const double cnt = static_cast<double>(cell.count);
          double var = (cell.sum_sq - cell.sum * cell.sum / cnt) / (cnt - 1.0);
          v = var > 0.0 ? std::sqrt(var) : 0.0;
          break;
        }
      }
      b.Append(v);
    }
    BENTO_ASSIGN_OR_RETURN(auto arr, b.Finish());
    fields.push_back({values + "_" + col_labels[c], TypeId::kFloat64});
    out_columns.push_back(std::move(arr));
  }
  return Table::Make(std::make_shared<col::Schema>(std::move(fields)),
                     std::move(out_columns));
}

}  // namespace bento::kern
