#include "kernels/row_hash.h"

#include <cmath>
#include <cstring>

#include "kernels/flat_index.h"
#include "sim/parallel.h"
#include "simd/simd.h"

namespace bento::kern {

namespace {

constexpr uint64_t kNullTag = 0x9AE16A3B2F90404FULL;

/// Hash combiner (Murmur3-finalizer variant); the one definition lives in
/// simd/hash.h so the vectorized mix kernels stay bit-identical.
inline uint64_t Mix(uint64_t h, uint64_t v) { return simd::MixU64(h, v); }

/// Reference cell hash: the semantic definition the SIMD fast paths below
/// reproduce. Still the direct implementation for bool and string cells.
inline uint64_t HashCell(const Array& a, int64_t i) {
  if (a.IsNull(i)) return kNullTag;
  switch (a.type()) {
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      return HashWord64(static_cast<uint64_t>(a.int64_data()[i]));
    case TypeId::kFloat64: {
      double v = a.float64_data()[i];
      if (v == 0.0) v = 0.0;  // normalize -0.0
      if (std::isnan(v)) return kNullTag ^ 1;
      uint64_t bits;
      std::memcpy(&bits, &v, 8);
      return HashWord64(bits);
    }
    case TypeId::kBool:
      return a.bool_data()[i] != 0 ? 0x12345 : 0x54321;
    case TypeId::kString: {
      std::string_view v = a.GetView(i);
      return Hash64(v.data(), v.size());
    }
    case TypeId::kCategorical: {
      // Hash the dictionary value so equal strings match across dictionaries.
      const auto& dict = *a.dictionary();
      const std::string& v = dict[static_cast<size_t>(a.codes_data()[i])];
      return Hash64(v.data(), v.size());
    }
  }
  return 0;
}

/// One key column prepared for range mixing. Fixed-width columns route
/// through the simd hash-mix kernels; categorical columns hash each
/// dictionary entry once and mix by code lookup (the rows-much-greater-
/// than-cardinality win), keeping cell hashes identical to hashing the
/// decoded strings.
struct ColumnHasher {
  const Array* array = nullptr;
  std::vector<uint64_t> code_hashes;

  explicit ColumnHasher(const Array* a) : array(a) {
    if (a->type() == TypeId::kCategorical) {
      const auto& dict = *a->dictionary();
      code_hashes.resize(dict.size());
      for (size_t c = 0; c < dict.size(); ++c) {
        code_hashes[c] = Hash64(dict[c].data(), dict[c].size());
      }
    }
  }

  /// Combines this column into the running row hashes for [begin, end).
  void MixRange(int64_t begin, int64_t end, uint64_t* hashes) const {
    const Array& a = *array;
    const uint8_t* validity = a.validity_bits();
    switch (a.type()) {
      case TypeId::kInt64:
      case TypeId::kTimestamp:
        simd::HashMixU64(hashes,
                         reinterpret_cast<const uint64_t*>(a.int64_data()),
                         validity, begin, end, kNullTag);
        return;
      case TypeId::kFloat64:
        simd::HashMixF64(hashes, a.float64_data(), validity, begin, end,
                         kNullTag);
        return;
      case TypeId::kCategorical:
        simd::HashMixCodes(hashes, a.codes_data(), validity, begin, end,
                           code_hashes.data(), kNullTag);
        return;
      default:
        for (int64_t i = begin; i < end; ++i) {
          hashes[i] = Mix(hashes[i], HashCell(a, i));
        }
    }
  }
};

Result<std::vector<ArrayPtr>> ResolveColumns(
    const TablePtr& table, const std::vector<std::string>& columns) {
  if (columns.empty()) return table->columns();
  std::vector<ArrayPtr> cols;
  for (const std::string& name : columns) {
    BENTO_ASSIGN_OR_RETURN(auto c, table->GetColumn(name));
    cols.push_back(std::move(c));
  }
  return cols;
}

std::vector<ColumnHasher> PrepareHashers(const std::vector<ArrayPtr>& cols) {
  std::vector<ColumnHasher> hashers;
  hashers.reserve(cols.size());
  for (const ArrayPtr& c : cols) hashers.emplace_back(c.get());
  return hashers;
}

}  // namespace

Result<std::vector<uint64_t>> HashRows(
    const TablePtr& table, const std::vector<std::string>& columns) {
  BENTO_ASSIGN_OR_RETURN(auto cols, ResolveColumns(table, columns));
  std::vector<uint64_t> hashes(static_cast<size_t>(table->num_rows()),
                               0x8445D61A4E774912ULL);
  if (detail::ForcedHashCollisionsActive()) return hashes;  // all rows collide
  const auto hashers = PrepareHashers(cols);
  for (const ColumnHasher& h : hashers) {
    h.MixRange(0, h.array->length(), hashes.data());
  }
  return hashes;
}

Result<std::vector<uint64_t>> HashRowsParallel(
    const TablePtr& table, const std::vector<std::string>& columns,
    const sim::ParallelOptions& options) {
  BENTO_ASSIGN_OR_RETURN(auto cols, ResolveColumns(table, columns));
  const int64_t n = table->num_rows();
  std::vector<uint64_t> hashes(static_cast<size_t>(n),
                               0x8445D61A4E774912ULL);
  if (detail::ForcedHashCollisionsActive()) return hashes;  // all rows collide
  const auto hashers = PrepareHashers(cols);
  int workers = options.max_workers;
  if (workers <= 0) {
    workers = sim::Session::Current() != nullptr
                  ? sim::Session::Current()->cores()
                  : 1;
  }
  auto ranges = sim::SplitRange(n, workers, 8192);
  if (ranges.size() <= 1) {
    for (const ColumnHasher& h : hashers) {
      h.MixRange(0, n, hashes.data());
    }
    return hashes;
  }
  // Tasks own disjoint row ranges; every task sweeps all key columns so the
  // combiner order matches the serial path bit for bit.
  BENTO_RETURN_NOT_OK(sim::ParallelFor(
      static_cast<int64_t>(ranges.size()),
      [&](int64_t r) {
        auto [b, e] = ranges[static_cast<size_t>(r)];
        for (const ColumnHasher& h : hashers) {
          h.MixRange(b, e, hashes.data());
        }
        return Status::OK();
      },
      options));
  return hashes;
}

Result<RowEquality> RowEquality::Make(
    const TablePtr& left, const std::vector<std::string>& left_cols,
    const TablePtr& right, const std::vector<std::string>& right_cols) {
  if (left_cols.size() != right_cols.size()) {
    return Status::Invalid("column count mismatch in RowEquality");
  }
  RowEquality eq;
  for (size_t k = 0; k < left_cols.size(); ++k) {
    BENTO_ASSIGN_OR_RETURN(auto lc, left->GetColumn(left_cols[k]));
    BENTO_ASSIGN_OR_RETURN(auto rc, right->GetColumn(right_cols[k]));
    const bool same =
        lc->type() == rc->type() ||
        (col::IsNumeric(lc->type()) && col::IsNumeric(rc->type())) ||
        // categorical and string compare by value
        ((lc->type() == TypeId::kString || lc->type() == TypeId::kCategorical) &&
         (rc->type() == TypeId::kString || rc->type() == TypeId::kCategorical));
    if (!same) {
      return Status::TypeError("key type mismatch: ", col::TypeName(lc->type()),
                               " vs ", col::TypeName(rc->type()));
    }
    // Same-dictionary categorical pairs compare by integer code: dictionary
    // entries are unique (interner-built), so code equality is string
    // equality. Cross-dictionary pairs still compare decoded strings.
    eq.same_dict_.push_back(lc->type() == TypeId::kCategorical &&
                            rc->type() == TypeId::kCategorical &&
                            lc->dictionary() == rc->dictionary());
    eq.left_.push_back(std::move(lc));
    eq.right_.push_back(std::move(rc));
  }
  return eq;
}

namespace {

inline std::string_view StringAt(const Array& a, int64_t i) {
  if (a.type() == TypeId::kCategorical) {
    return (*a.dictionary())[static_cast<size_t>(a.codes_data()[i])];
  }
  return a.GetView(i);
}

inline double NumericAt(const Array& a, int64_t i) {
  return a.type() == TypeId::kFloat64 ? a.float64_data()[i]
                                      : static_cast<double>(a.int64_data()[i]);
}

bool CellEqual(const Array& l, int64_t i, const Array& r, int64_t j) {
  const bool ln = l.IsNull(i);
  const bool rn = r.IsNull(j);
  if (ln || rn) return ln && rn;  // null == null for grouping semantics
  switch (l.type()) {
    case TypeId::kBool:
      return (l.bool_data()[i] != 0) == (r.bool_data()[j] != 0);
    case TypeId::kString:
    case TypeId::kCategorical:
      return StringAt(l, i) == StringAt(r, j);
    default: {
      double lv = NumericAt(l, i);
      double rv = NumericAt(r, j);
      if (std::isnan(lv) || std::isnan(rv)) {
        return std::isnan(lv) && std::isnan(rv);
      }
      return lv == rv;
    }
  }
}

}  // namespace

bool RowEquality::Equal(int64_t i, int64_t j) const {
  for (size_t k = 0; k < left_.size(); ++k) {
    const Array& l = *left_[k];
    const Array& r = *right_[k];
    if (same_dict_[k]) {
      const bool ln = l.IsNull(i);
      const bool rn = r.IsNull(j);
      if (ln || rn) {
        if (ln && rn) continue;
        return false;
      }
      if (l.codes_data()[i] != r.codes_data()[j]) return false;
      continue;
    }
    if (!CellEqual(l, i, r, j)) return false;
  }
  return true;
}

}  // namespace bento::kern
