#include "kernels/row_hash.h"

#include <cmath>
#include <cstring>

#include "kernels/flat_index.h"
#include "sim/parallel.h"

namespace bento::kern {

namespace {

constexpr uint64_t kNullTag = 0x9AE16A3B2F90404FULL;

inline uint64_t Mix(uint64_t h, uint64_t v) {
  // 128-bit-free variant of the Murmur3 finalizer as a combiner.
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return h;
}

inline uint64_t HashCell(const Array& a, int64_t i) {
  if (a.IsNull(i)) return kNullTag;
  switch (a.type()) {
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      return HashWord64(static_cast<uint64_t>(a.int64_data()[i]));
    case TypeId::kFloat64: {
      double v = a.float64_data()[i];
      if (v == 0.0) v = 0.0;  // normalize -0.0
      if (std::isnan(v)) return kNullTag ^ 1;
      uint64_t bits;
      std::memcpy(&bits, &v, 8);
      return HashWord64(bits);
    }
    case TypeId::kBool:
      return a.bool_data()[i] != 0 ? 0x12345 : 0x54321;
    case TypeId::kString: {
      std::string_view v = a.GetView(i);
      return Hash64(v.data(), v.size());
    }
    case TypeId::kCategorical: {
      // Hash the dictionary value so equal strings match across dictionaries.
      const auto& dict = *a.dictionary();
      const std::string& v = dict[static_cast<size_t>(a.codes_data()[i])];
      return Hash64(v.data(), v.size());
    }
  }
  return 0;
}

/// Combines one column into the running row hashes for rows [begin, end).
void HashColumnRange(const Array& a, int64_t begin, int64_t end,
                     uint64_t* hashes) {
  for (int64_t i = begin; i < end; ++i) {
    hashes[i] = Mix(hashes[i], HashCell(a, i));
  }
}

Result<std::vector<ArrayPtr>> ResolveColumns(
    const TablePtr& table, const std::vector<std::string>& columns) {
  if (columns.empty()) return table->columns();
  std::vector<ArrayPtr> cols;
  for (const std::string& name : columns) {
    BENTO_ASSIGN_OR_RETURN(auto c, table->GetColumn(name));
    cols.push_back(std::move(c));
  }
  return cols;
}

}  // namespace

Result<std::vector<uint64_t>> HashRows(
    const TablePtr& table, const std::vector<std::string>& columns) {
  BENTO_ASSIGN_OR_RETURN(auto cols, ResolveColumns(table, columns));
  std::vector<uint64_t> hashes(static_cast<size_t>(table->num_rows()),
                               0x8445D61A4E774912ULL);
  if (detail::ForcedHashCollisionsActive()) return hashes;  // all rows collide
  for (const ArrayPtr& c : cols) {
    HashColumnRange(*c, 0, c->length(), hashes.data());
  }
  return hashes;
}

Result<std::vector<uint64_t>> HashRowsParallel(
    const TablePtr& table, const std::vector<std::string>& columns,
    const sim::ParallelOptions& options) {
  BENTO_ASSIGN_OR_RETURN(auto cols, ResolveColumns(table, columns));
  const int64_t n = table->num_rows();
  std::vector<uint64_t> hashes(static_cast<size_t>(n),
                               0x8445D61A4E774912ULL);
  if (detail::ForcedHashCollisionsActive()) return hashes;  // all rows collide
  int workers = options.max_workers;
  if (workers <= 0) {
    workers = sim::Session::Current() != nullptr
                  ? sim::Session::Current()->cores()
                  : 1;
  }
  auto ranges = sim::SplitRange(n, workers, 8192);
  if (ranges.size() <= 1) {
    for (const ArrayPtr& c : cols) {
      HashColumnRange(*c, 0, n, hashes.data());
    }
    return hashes;
  }
  // Tasks own disjoint row ranges; every task sweeps all key columns so the
  // combiner order matches the serial path bit for bit.
  BENTO_RETURN_NOT_OK(sim::ParallelFor(
      static_cast<int64_t>(ranges.size()),
      [&](int64_t r) {
        auto [b, e] = ranges[static_cast<size_t>(r)];
        for (const ArrayPtr& c : cols) {
          HashColumnRange(*c, b, e, hashes.data());
        }
        return Status::OK();
      },
      options));
  return hashes;
}

Result<RowEquality> RowEquality::Make(
    const TablePtr& left, const std::vector<std::string>& left_cols,
    const TablePtr& right, const std::vector<std::string>& right_cols) {
  if (left_cols.size() != right_cols.size()) {
    return Status::Invalid("column count mismatch in RowEquality");
  }
  RowEquality eq;
  for (size_t k = 0; k < left_cols.size(); ++k) {
    BENTO_ASSIGN_OR_RETURN(auto lc, left->GetColumn(left_cols[k]));
    BENTO_ASSIGN_OR_RETURN(auto rc, right->GetColumn(right_cols[k]));
    const bool same =
        lc->type() == rc->type() ||
        (col::IsNumeric(lc->type()) && col::IsNumeric(rc->type())) ||
        // categorical and string compare by value
        ((lc->type() == TypeId::kString || lc->type() == TypeId::kCategorical) &&
         (rc->type() == TypeId::kString || rc->type() == TypeId::kCategorical));
    if (!same) {
      return Status::TypeError("key type mismatch: ", col::TypeName(lc->type()),
                               " vs ", col::TypeName(rc->type()));
    }
    eq.left_.push_back(std::move(lc));
    eq.right_.push_back(std::move(rc));
  }
  return eq;
}

namespace {

inline std::string_view StringAt(const Array& a, int64_t i) {
  if (a.type() == TypeId::kCategorical) {
    return (*a.dictionary())[static_cast<size_t>(a.codes_data()[i])];
  }
  return a.GetView(i);
}

inline double NumericAt(const Array& a, int64_t i) {
  return a.type() == TypeId::kFloat64 ? a.float64_data()[i]
                                      : static_cast<double>(a.int64_data()[i]);
}

bool CellEqual(const Array& l, int64_t i, const Array& r, int64_t j) {
  const bool ln = l.IsNull(i);
  const bool rn = r.IsNull(j);
  if (ln || rn) return ln && rn;  // null == null for grouping semantics
  switch (l.type()) {
    case TypeId::kBool:
      return (l.bool_data()[i] != 0) == (r.bool_data()[j] != 0);
    case TypeId::kString:
    case TypeId::kCategorical:
      return StringAt(l, i) == StringAt(r, j);
    default: {
      double lv = NumericAt(l, i);
      double rv = NumericAt(r, j);
      if (std::isnan(lv) || std::isnan(rv)) {
        return std::isnan(lv) && std::isnan(rv);
      }
      return lv == rv;
    }
  }
}

}  // namespace

bool RowEquality::Equal(int64_t i, int64_t j) const {
  for (size_t k = 0; k < left_.size(); ++k) {
    if (!CellEqual(*left_[k], i, *right_[k], j)) return false;
  }
  return true;
}

}  // namespace bento::kern
