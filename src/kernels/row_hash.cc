#include "kernels/row_hash.h"

#include <cmath>
#include <cstring>

namespace bento::kern {

namespace {

constexpr uint64_t kNullTag = 0x9AE16A3B2F90404FULL;

inline uint64_t Mix(uint64_t h, uint64_t v) {
  // 128-bit-free variant of the Murmur3 finalizer as a combiner.
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return h;
}

inline uint64_t HashBytes(const void* data, size_t n) {
  // FNV-1a: adequate distribution for grouping keys.
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

inline uint64_t HashCell(const Array& a, int64_t i) {
  if (a.IsNull(i)) return kNullTag;
  switch (a.type()) {
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      return HashBytes(&a.int64_data()[i], 8);
    case TypeId::kFloat64: {
      double v = a.float64_data()[i];
      if (v == 0.0) v = 0.0;  // normalize -0.0
      if (std::isnan(v)) return kNullTag ^ 1;
      return HashBytes(&v, 8);
    }
    case TypeId::kBool:
      return a.bool_data()[i] != 0 ? 0x12345 : 0x54321;
    case TypeId::kString: {
      std::string_view v = a.GetView(i);
      return HashBytes(v.data(), v.size());
    }
    case TypeId::kCategorical: {
      // Hash the dictionary value so equal strings match across dictionaries.
      const auto& dict = *a.dictionary();
      const std::string& v = dict[static_cast<size_t>(a.codes_data()[i])];
      return HashBytes(v.data(), v.size());
    }
  }
  return 0;
}

}  // namespace

Result<std::vector<uint64_t>> HashRows(
    const TablePtr& table, const std::vector<std::string>& columns) {
  std::vector<ArrayPtr> cols;
  if (columns.empty()) {
    cols = table->columns();
  } else {
    for (const std::string& name : columns) {
      BENTO_ASSIGN_OR_RETURN(auto c, table->GetColumn(name));
      cols.push_back(std::move(c));
    }
  }
  std::vector<uint64_t> hashes(static_cast<size_t>(table->num_rows()),
                               0x8445D61A4E774912ULL);
  for (const ArrayPtr& c : cols) {
    for (int64_t i = 0; i < c->length(); ++i) {
      hashes[static_cast<size_t>(i)] =
          Mix(hashes[static_cast<size_t>(i)], HashCell(*c, i));
    }
  }
  return hashes;
}

Result<RowEquality> RowEquality::Make(
    const TablePtr& left, const std::vector<std::string>& left_cols,
    const TablePtr& right, const std::vector<std::string>& right_cols) {
  if (left_cols.size() != right_cols.size()) {
    return Status::Invalid("column count mismatch in RowEquality");
  }
  RowEquality eq;
  for (size_t k = 0; k < left_cols.size(); ++k) {
    BENTO_ASSIGN_OR_RETURN(auto lc, left->GetColumn(left_cols[k]));
    BENTO_ASSIGN_OR_RETURN(auto rc, right->GetColumn(right_cols[k]));
    const bool same =
        lc->type() == rc->type() ||
        (col::IsNumeric(lc->type()) && col::IsNumeric(rc->type())) ||
        // categorical and string compare by value
        ((lc->type() == TypeId::kString || lc->type() == TypeId::kCategorical) &&
         (rc->type() == TypeId::kString || rc->type() == TypeId::kCategorical));
    if (!same) {
      return Status::TypeError("key type mismatch: ", col::TypeName(lc->type()),
                               " vs ", col::TypeName(rc->type()));
    }
    eq.left_.push_back(std::move(lc));
    eq.right_.push_back(std::move(rc));
  }
  return eq;
}

namespace {

inline std::string_view StringAt(const Array& a, int64_t i) {
  if (a.type() == TypeId::kCategorical) {
    return (*a.dictionary())[static_cast<size_t>(a.codes_data()[i])];
  }
  return a.GetView(i);
}

inline double NumericAt(const Array& a, int64_t i) {
  return a.type() == TypeId::kFloat64 ? a.float64_data()[i]
                                      : static_cast<double>(a.int64_data()[i]);
}

bool CellEqual(const Array& l, int64_t i, const Array& r, int64_t j) {
  const bool ln = l.IsNull(i);
  const bool rn = r.IsNull(j);
  if (ln || rn) return ln && rn;  // null == null for grouping semantics
  switch (l.type()) {
    case TypeId::kBool:
      return (l.bool_data()[i] != 0) == (r.bool_data()[j] != 0);
    case TypeId::kString:
    case TypeId::kCategorical:
      return StringAt(l, i) == StringAt(r, j);
    default: {
      double lv = NumericAt(l, i);
      double rv = NumericAt(r, j);
      if (std::isnan(lv) || std::isnan(rv)) {
        return std::isnan(lv) && std::isnan(rv);
      }
      return lv == rv;
    }
  }
}

}  // namespace

bool RowEquality::Equal(int64_t i, int64_t j) const {
  for (size_t k = 0; k < left_.size(); ++k) {
    if (!CellEqual(*left_[k], i, *right_[k], j)) return false;
  }
  return true;
}

}  // namespace bento::kern
