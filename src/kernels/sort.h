#ifndef BENTO_KERNELS_SORT_H_
#define BENTO_KERNELS_SORT_H_

#include <cstdint>
#include <vector>

#include "kernels/common.h"
#include "sim/parallel.h"

namespace bento::kern {

/// \brief Stable multi-key argsort; nulls order last regardless of
/// direction (the Pandas default).
Result<std::vector<int64_t>> ArgSort(const TablePtr& table,
                                     const std::vector<SortKey>& keys);

/// \brief Chunked argsort + parallel run merge: the shape multithreaded
/// engines use. Per-chunk sorts run through sim::ParallelFor, then the
/// sorted runs merge through MergeSortedRuns — every level of the merge
/// tree fans out too, so no serial O(n log k) heap remains. In real mode
/// the run count is capped at the physical thread count (extra runs only
/// add merge levels). Output equals ArgSort exactly (stable, nulls last).
Result<std::vector<int64_t>> ArgSortParallel(
    const TablePtr& table, const std::vector<SortKey>& keys,
    const sim::ParallelOptions& options = {});

/// \brief Stable merge of pre-sorted index runs over `table`'s sort keys.
/// Requirements: each run is sorted under `keys`, and run i's row ids all
/// precede run i+1's (the chunked-argsort shape) — ties then resolve to the
/// lower run, which makes the result identical to one serial stable sort.
/// Adjacent runs merge pairwise per level; each pair is cut into balanced
/// segments by binary-searched splitters (split A evenly, align B with
/// lower_bound) and all segments of a level merge in one ParallelFor.
/// Exposed for the sort ablation benchmarks.
Result<std::vector<int64_t>> MergeSortedRuns(
    const TablePtr& table, const std::vector<SortKey>& keys,
    std::vector<std::vector<int64_t>> runs,
    const sim::ParallelOptions& options = {});

/// \brief Materializes the sorted table (argsort + take).
Result<TablePtr> SortTable(const TablePtr& table,
                           const std::vector<SortKey>& keys);

/// \brief Three-way comparison of row `i` of `a` against row `j` of `b`
/// under `keys` (schemas must agree on the key columns). Nulls sort last.
/// Used by external merge sort.
Result<int> CompareTableRows(const TablePtr& a, int64_t i, const TablePtr& b,
                             int64_t j, const std::vector<SortKey>& keys);

}  // namespace bento::kern

#endif  // BENTO_KERNELS_SORT_H_
