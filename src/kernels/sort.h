#ifndef BENTO_KERNELS_SORT_H_
#define BENTO_KERNELS_SORT_H_

#include <cstdint>
#include <vector>

#include "kernels/common.h"
#include "sim/parallel.h"

namespace bento::kern {

/// \brief Stable multi-key argsort; nulls order last regardless of
/// direction (the Pandas default).
Result<std::vector<int64_t>> ArgSort(const TablePtr& table,
                                     const std::vector<SortKey>& keys);

/// \brief Chunked argsort + k-way merge: the shape multithreaded engines
/// use. Per-chunk sorts run through sim::ParallelFor so the machine
/// simulator credits their overlap; the merge is serial.
Result<std::vector<int64_t>> ArgSortParallel(
    const TablePtr& table, const std::vector<SortKey>& keys,
    const sim::ParallelOptions& options = {});

/// \brief Materializes the sorted table (argsort + take).
Result<TablePtr> SortTable(const TablePtr& table,
                           const std::vector<SortKey>& keys);

/// \brief Three-way comparison of row `i` of `a` against row `j` of `b`
/// under `keys` (schemas must agree on the key columns). Nulls sort last.
/// Used by external merge sort.
Result<int> CompareTableRows(const TablePtr& a, int64_t i, const TablePtr& b,
                             int64_t j, const std::vector<SortKey>& keys);

}  // namespace bento::kern

#endif  // BENTO_KERNELS_SORT_H_
