#ifndef BENTO_KERNELS_CAST_H_
#define BENTO_KERNELS_CAST_H_

#include "kernels/common.h"

namespace bento::kern {

/// \brief Converts `values` to `target` (the astype preparator).
///
/// Supported directions: numeric<->numeric, numeric<->bool,
/// anything->string, string->numeric (strict parse; unparsable values fail),
/// categorical->string, string->categorical. Casting to the same type is a
/// no-op returning the input.
Result<ArrayPtr> Cast(const ArrayPtr& values, TypeId target);

/// \brief Exact-value replacement (the `replace` preparator): every cell
/// equal to `from` becomes `to`. Null `from` replaces nulls (like fillna);
/// null `to` nulls matches out.
Result<ArrayPtr> ReplaceValues(const ArrayPtr& values, const Scalar& from,
                               const Scalar& to);

}  // namespace bento::kern

#endif  // BENTO_KERNELS_CAST_H_
