#include "kernels/string_ops.h"

#include <cctype>

#include "columnar/builder.h"
#include "kernels/flat_index.h"
#include "util/string_util.h"

namespace bento::kern {

namespace {

Status CheckString(const ArrayPtr& values, const char* op) {
  if (values->type() != TypeId::kString &&
      values->type() != TypeId::kCategorical) {
    return Status::TypeError(op, " requires a string column, got ",
                             col::TypeName(values->type()));
  }
  return Status::OK();
}

bool ContainsCaseInsensitive(std::string_view hay, std::string_view needle) {
  if (needle.empty()) return true;
  if (hay.size() < needle.size()) return false;
  for (size_t i = 0; i + needle.size() <= hay.size(); ++i) {
    size_t j = 0;
    for (; j < needle.size(); ++j) {
      if (std::tolower(static_cast<unsigned char>(hay[i + j])) !=
          std::tolower(static_cast<unsigned char>(needle[j]))) {
        break;
      }
    }
    if (j == needle.size()) return true;
  }
  return false;
}

// Apply a per-entry transform to a categorical column's dictionary and keep
// the codes. A transform can collapse distinct entries ("US"/"us" under
// lowercasing), so transformed entries re-intern into a fresh unique
// dictionary and the codes remap through it — preserving the
// entries-are-unique invariant the code-equality fast paths rely on.
template <typename Fn>
Result<ArrayPtr> TransformDictionary(const ArrayPtr& values, Fn&& transform) {
  const auto& dict = *values->dictionary();
  StringInterner interner;
  std::vector<int32_t> remap(dict.size());
  for (size_t c = 0; c < dict.size(); ++c) {
    remap[c] = interner.FindOrInsert(transform(dict[c]));
  }
  col::CategoricalBuilder out;
  const int32_t* codes = values->codes_data();
  for (int64_t i = 0; i < values->length(); ++i) {
    if (!values->IsValid(i)) {
      out.AppendNull();
      continue;
    }
    out.Append(remap[static_cast<size_t>(codes[i])]);
  }
  auto entries =
      std::make_shared<std::vector<std::string>>(interner.ToStrings());
  return out.Finish(std::move(entries));
}

}  // namespace

Result<ArrayPtr> Contains(const ArrayPtr& values, const std::string& pattern,
                          bool case_sensitive, StringEngine engine) {
  BENTO_RETURN_NOT_OK(CheckString(values, "contains"));
  col::BoolBuilder out;
  out.Reserve(values->length());
  if (values->type() == TypeId::kCategorical) {
    // One substring search per dictionary entry, one lookup per row.
    const auto& dict = *values->dictionary();
    std::vector<uint8_t> lut(dict.size());
    for (size_t c = 0; c < dict.size(); ++c) {
      lut[c] = (case_sensitive ? StrContains(dict[c], pattern)
                               : ContainsCaseInsensitive(dict[c], pattern))
                   ? 1
                   : 0;
    }
    const int32_t* codes = values->codes_data();
    for (int64_t i = 0; i < values->length(); ++i) {
      if (!values->IsValid(i)) {
        out.AppendNull();
        continue;
      }
      out.Append(lut[static_cast<size_t>(codes[i])] != 0);
    }
    return out.Finish();
  }
  for (int64_t i = 0; i < values->length(); ++i) {
    if (!values->IsValid(i)) {
      out.AppendNull();
      continue;
    }
    bool hit;
    if (engine == StringEngine::kRowObjects) {
      // Object model: copy into an owned string first (per-row allocation),
      // the cost profile of an object-dtype scan.
      std::string owned(values->GetView(i));
      hit = case_sensitive ? StrContains(owned, pattern)
                           : ContainsCaseInsensitive(owned, pattern);
    } else {
      std::string_view v = values->GetView(i);
      hit = case_sensitive ? StrContains(v, pattern)
                           : ContainsCaseInsensitive(v, pattern);
    }
    out.Append(hit);
  }
  return out.Finish();
}

Result<ArrayPtr> Lower(const ArrayPtr& values, StringEngine engine) {
  BENTO_RETURN_NOT_OK(CheckString(values, "lower"));
  if (values->type() == TypeId::kCategorical) {
    return TransformDictionary(
        values, [](const std::string& s) { return AsciiToLower(s); });
  }
  col::StringBuilder out;
  out.Reserve(values->length());
  for (int64_t i = 0; i < values->length(); ++i) {
    if (!values->IsValid(i)) {
      out.AppendNull();
      continue;
    }
    if (engine == StringEngine::kRowObjects) {
      std::string owned(values->GetView(i));
      out.Append(AsciiToLower(owned));
    } else {
      out.Append(AsciiToLower(values->GetView(i)));
    }
  }
  return out.Finish();
}

Result<ArrayPtr> ReplaceSubstring(const ArrayPtr& values,
                                  const std::string& from,
                                  const std::string& to) {
  BENTO_RETURN_NOT_OK(CheckString(values, "replace"));
  if (from.empty()) return Status::Invalid("empty 'from' pattern");
  auto replace_all = [&from, &to](std::string_view v) {
    std::string result;
    size_t pos = 0;
    while (pos < v.size()) {
      size_t hit = v.find(from, pos);
      if (hit == std::string_view::npos) {
        result.append(v.substr(pos));
        break;
      }
      result.append(v.substr(pos, hit - pos));
      result.append(to);
      pos = hit + from.size();
    }
    return result;
  };
  if (values->type() == TypeId::kCategorical) {
    return TransformDictionary(values, replace_all);
  }
  col::StringBuilder out;
  out.Reserve(values->length());
  for (int64_t i = 0; i < values->length(); ++i) {
    if (!values->IsValid(i)) {
      out.AppendNull();
      continue;
    }
    out.Append(replace_all(values->GetView(i)));
  }
  return out.Finish();
}

Result<ArrayPtr> StringLength(const ArrayPtr& values) {
  BENTO_RETURN_NOT_OK(CheckString(values, "length"));
  col::Int64Builder out;
  out.Reserve(values->length());
  if (values->type() == TypeId::kCategorical) {
    // One length per dictionary entry, one lookup per row.
    const auto& dict = *values->dictionary();
    std::vector<int64_t> lengths(dict.size());
    for (size_t c = 0; c < dict.size(); ++c) {
      lengths[c] = static_cast<int64_t>(dict[c].size());
    }
    const int32_t* codes = values->codes_data();
    for (int64_t i = 0; i < values->length(); ++i) {
      const bool valid = values->IsValid(i);
      out.AppendMaybe(valid ? lengths[static_cast<size_t>(codes[i])] : 0,
                      valid);
    }
    return out.Finish();
  }
  const int64_t* offsets = values->offsets_data();
  for (int64_t i = 0; i < values->length(); ++i) {
    out.AppendMaybe(offsets[i + 1] - offsets[i], values->IsValid(i));
  }
  return out.Finish();
}

}  // namespace bento::kern
