#include "kernels/string_ops.h"

#include <cctype>

#include "columnar/builder.h"
#include "util/string_util.h"

namespace bento::kern {

namespace {

Status CheckString(const ArrayPtr& values, const char* op) {
  if (values->type() != TypeId::kString) {
    return Status::TypeError(op, " requires a string column, got ",
                             col::TypeName(values->type()));
  }
  return Status::OK();
}

bool ContainsCaseInsensitive(std::string_view hay, std::string_view needle) {
  if (needle.empty()) return true;
  if (hay.size() < needle.size()) return false;
  for (size_t i = 0; i + needle.size() <= hay.size(); ++i) {
    size_t j = 0;
    for (; j < needle.size(); ++j) {
      if (std::tolower(static_cast<unsigned char>(hay[i + j])) !=
          std::tolower(static_cast<unsigned char>(needle[j]))) {
        break;
      }
    }
    if (j == needle.size()) return true;
  }
  return false;
}

}  // namespace

Result<ArrayPtr> Contains(const ArrayPtr& values, const std::string& pattern,
                          bool case_sensitive, StringEngine engine) {
  BENTO_RETURN_NOT_OK(CheckString(values, "contains"));
  col::BoolBuilder out;
  out.Reserve(values->length());
  for (int64_t i = 0; i < values->length(); ++i) {
    if (!values->IsValid(i)) {
      out.AppendNull();
      continue;
    }
    bool hit;
    if (engine == StringEngine::kRowObjects) {
      // Object model: copy into an owned string first (per-row allocation),
      // the cost profile of an object-dtype scan.
      std::string owned(values->GetView(i));
      hit = case_sensitive ? StrContains(owned, pattern)
                           : ContainsCaseInsensitive(owned, pattern);
    } else {
      std::string_view v = values->GetView(i);
      hit = case_sensitive ? StrContains(v, pattern)
                           : ContainsCaseInsensitive(v, pattern);
    }
    out.Append(hit);
  }
  return out.Finish();
}

Result<ArrayPtr> Lower(const ArrayPtr& values, StringEngine engine) {
  BENTO_RETURN_NOT_OK(CheckString(values, "lower"));
  col::StringBuilder out;
  out.Reserve(values->length());
  for (int64_t i = 0; i < values->length(); ++i) {
    if (!values->IsValid(i)) {
      out.AppendNull();
      continue;
    }
    if (engine == StringEngine::kRowObjects) {
      std::string owned(values->GetView(i));
      out.Append(AsciiToLower(owned));
    } else {
      out.Append(AsciiToLower(values->GetView(i)));
    }
  }
  return out.Finish();
}

Result<ArrayPtr> ReplaceSubstring(const ArrayPtr& values,
                                  const std::string& from,
                                  const std::string& to) {
  BENTO_RETURN_NOT_OK(CheckString(values, "replace"));
  if (from.empty()) return Status::Invalid("empty 'from' pattern");
  col::StringBuilder out;
  out.Reserve(values->length());
  std::string scratch;
  for (int64_t i = 0; i < values->length(); ++i) {
    if (!values->IsValid(i)) {
      out.AppendNull();
      continue;
    }
    std::string_view v = values->GetView(i);
    scratch.clear();
    size_t pos = 0;
    while (pos < v.size()) {
      size_t hit = v.find(from, pos);
      if (hit == std::string_view::npos) {
        scratch.append(v.substr(pos));
        break;
      }
      scratch.append(v.substr(pos, hit - pos));
      scratch.append(to);
      pos = hit + from.size();
    }
    out.Append(scratch);
  }
  return out.Finish();
}

Result<ArrayPtr> StringLength(const ArrayPtr& values) {
  BENTO_RETURN_NOT_OK(CheckString(values, "length"));
  col::Int64Builder out;
  out.Reserve(values->length());
  const int64_t* offsets = values->offsets_data();
  for (int64_t i = 0; i < values->length(); ++i) {
    out.AppendMaybe(offsets[i + 1] - offsets[i], values->IsValid(i));
  }
  return out.Finish();
}

}  // namespace bento::kern
