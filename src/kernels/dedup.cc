#include "kernels/dedup.h"

#include "kernels/flat_index.h"
#include "kernels/row_hash.h"
#include "kernels/selection.h"

namespace bento::kern {

Result<TablePtr> DropDuplicates(const TablePtr& table,
                                const std::vector<std::string>& subset) {
  BENTO_ASSIGN_OR_RETURN(auto hashes, HashRows(table, subset));
  std::vector<std::string> cols = subset;
  if (cols.empty()) cols = table->schema()->names();
  BENTO_ASSIGN_OR_RETURN(auto equal, RowEquality::Make(table, cols, table, cols));

  const int64_t n = table->num_rows();
  FlatGrouper seen(n / 8 + 16);
  std::vector<int64_t> keep_rows;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t before = seen.num_groups();
    seen.FindOrInsert(hashes[static_cast<size_t>(i)], i,
                      [&](int64_t a, int64_t b) { return equal.Equal(a, b); });
    if (seen.num_groups() != before) keep_rows.push_back(i);  // first sighting
  }
  return TakeTable(table, keep_rows);
}

Result<ArrayPtr> Unique(const ArrayPtr& values) {
  // Reuse row machinery through a single-column table; nulls are dropped
  // during the dedup scan itself (Unique reports non-null values), not via
  // a mask + Filter pass over the distinct result.
  auto schema = std::make_shared<col::Schema>(
      std::vector<col::Field>{{"v", values->type()}});
  BENTO_ASSIGN_OR_RETURN(auto table, Table::Make(schema, {values}));
  BENTO_ASSIGN_OR_RETURN(auto hashes, HashRows(table, {"v"}));
  BENTO_ASSIGN_OR_RETURN(auto equal,
                         RowEquality::Make(table, {"v"}, table, {"v"}));

  const int64_t n = values->length();
  FlatGrouper seen(n / 8 + 16);
  std::vector<int64_t> keep_rows;
  for (int64_t i = 0; i < n; ++i) {
    if (values->IsNull(i)) continue;
    const int64_t before = seen.num_groups();
    seen.FindOrInsert(hashes[static_cast<size_t>(i)], i,
                      [&](int64_t a, int64_t b) { return equal.Equal(a, b); });
    if (seen.num_groups() != before) keep_rows.push_back(i);
  }
  return Take(values, keep_rows);
}

}  // namespace bento::kern
