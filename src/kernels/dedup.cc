#include "kernels/dedup.h"

#include <algorithm>
#include <memory>

#include "kernels/flat_index.h"
#include "kernels/row_hash.h"
#include "kernels/selection.h"

namespace bento::kern {

namespace {

/// First-sighting rows of `table` over `equal_cols`, computed with the
/// morsel partition-scan: scatter rows (minus `skip`-ped ones) to radix
/// partitions of the top hash bits, record first sightings per partition in
/// global row order, then merge the ascending keep lists. Partitions hold
/// disjoint keys, so the union of first sightings equals the serial scan's.
template <typename Skip>
Result<std::vector<int64_t>> DistinctRowsPartitioned(
    const TablePtr& table, const std::vector<std::string>& hash_cols,
    const std::vector<std::string>& equal_cols, Skip&& skip,
    const sim::ParallelOptions& options) {
  const int64_t n = table->num_rows();
  const int workers = sim::ResolveWorkers(options);
  BENTO_ASSIGN_OR_RETURN(auto hashes,
                         HashRowsParallel(table, hash_cols, options));
  BENTO_ASSIGN_OR_RETURN(auto equal,
                         RowEquality::Make(table, equal_cols, table, equal_cols));

  const int parts = FlatIndex::PlanPartitions(n, options);
  int part_bits = 0;
  while ((1 << part_bits) < parts) ++part_bits;
  const int shift = 64 - part_bits;

  std::vector<std::pair<int64_t, int64_t>> morsels;
  std::vector<std::vector<int64_t>> buckets;  // [morsel * parts + partition]
  if (parts > 1) {
    morsels = sim::MorselRanges(n, workers);
    buckets.assign(morsels.size() * static_cast<size_t>(parts), {});
    BENTO_RETURN_NOT_OK(sim::ParallelFor(
        static_cast<int64_t>(morsels.size()),
        [&](int64_t m) -> Status {
          const auto [b, e] = morsels[static_cast<size_t>(m)];
          std::vector<int64_t>* local =
              &buckets[static_cast<size_t>(m) * static_cast<size_t>(parts)];
          for (int p = 0; p < parts; ++p) {
            local[p].reserve(static_cast<size_t>((e - b) / parts + 8));
          }
          for (int64_t i = b; i < e; ++i) {
            if (skip(i)) continue;
            local[hashes[static_cast<size_t>(i)] >> shift].push_back(i);
          }
          return Status::OK();
        },
        options));
  }

  std::vector<std::vector<int64_t>> part_keep(static_cast<size_t>(parts));
  BENTO_RETURN_NOT_OK(sim::ParallelFor(
      parts,
      [&](int64_t p) -> Status {
        BENTO_TRACE_SPAN(kKernel, "dedup.morsel.partition");
        FlatGrouper seen(n / (8 * parts) + 16);
        auto& keep = part_keep[static_cast<size_t>(p)];
        auto consume = [&](int64_t i) {
          const int64_t before = seen.num_groups();
          seen.FindOrInsert(
              hashes[static_cast<size_t>(i)], i,
              [&](int64_t a, int64_t b) { return equal.Equal(a, b); });
          if (seen.num_groups() != before) keep.push_back(i);
        };
        if (parts == 1) {
          for (int64_t i = 0; i < n; ++i) {
            if (!skip(i)) consume(i);
          }
        } else {
          for (size_t m = 0; m < morsels.size(); ++m) {
            for (int64_t i :
                 buckets[m * static_cast<size_t>(parts) + static_cast<size_t>(p)]) {
              consume(i);
            }
          }
        }
        return Status::OK();
      },
      options));

  // Per-partition keep lists are ascending (scan follows global row order);
  // pairwise merges restore the single ascending first-seen list.
  std::vector<int64_t> keep_rows;
  for (const auto& keep : part_keep) {
    if (keep_rows.empty()) {
      keep_rows = keep;
      continue;
    }
    std::vector<int64_t> merged(keep_rows.size() + keep.size());
    std::merge(keep_rows.begin(), keep_rows.end(), keep.begin(), keep.end(),
               merged.begin());
    keep_rows = std::move(merged);
  }
  return keep_rows;
}

}  // namespace

Result<TablePtr> DropDuplicates(const TablePtr& table,
                                const std::vector<std::string>& subset) {
  BENTO_ASSIGN_OR_RETURN(auto hashes, HashRows(table, subset));
  std::vector<std::string> cols = subset;
  if (cols.empty()) cols = table->schema()->names();
  BENTO_ASSIGN_OR_RETURN(auto equal, RowEquality::Make(table, cols, table, cols));

  const int64_t n = table->num_rows();
  FlatGrouper seen(n / 8 + 16);
  std::vector<int64_t> keep_rows;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t before = seen.num_groups();
    seen.FindOrInsert(hashes[static_cast<size_t>(i)], i,
                      [&](int64_t a, int64_t b) { return equal.Equal(a, b); });
    if (seen.num_groups() != before) keep_rows.push_back(i);  // first sighting
  }
  return TakeTable(table, keep_rows);
}

Result<TablePtr> DropDuplicatesParallel(const TablePtr& table,
                                        const std::vector<std::string>& subset,
                                        const sim::ParallelOptions& options) {
  BENTO_TRACE_SPAN(kKernel, "dedup.parallel");
  const int workers = sim::ResolveWorkers(options);
  if (workers <= 1 || table->num_rows() < 8192) {
    return DropDuplicates(table, subset);
  }
  std::vector<std::string> cols = subset;
  if (cols.empty()) cols = table->schema()->names();
  BENTO_ASSIGN_OR_RETURN(
      auto keep_rows,
      DistinctRowsPartitioned(table, subset, cols,
                              [](int64_t) { return false; }, options));
  return TakeTableParallel(table, keep_rows, options);
}

Result<ArrayPtr> Unique(const ArrayPtr& values) {
  // Reuse row machinery through a single-column table; nulls are dropped
  // during the dedup scan itself (Unique reports non-null values), not via
  // a mask + Filter pass over the distinct result.
  auto schema = std::make_shared<col::Schema>(
      std::vector<col::Field>{{"v", values->type()}});
  BENTO_ASSIGN_OR_RETURN(auto table, Table::Make(schema, {values}));
  BENTO_ASSIGN_OR_RETURN(auto hashes, HashRows(table, {"v"}));
  BENTO_ASSIGN_OR_RETURN(auto equal,
                         RowEquality::Make(table, {"v"}, table, {"v"}));

  const int64_t n = values->length();
  FlatGrouper seen(n / 8 + 16);
  std::vector<int64_t> keep_rows;
  for (int64_t i = 0; i < n; ++i) {
    if (values->IsNull(i)) continue;
    const int64_t before = seen.num_groups();
    seen.FindOrInsert(hashes[static_cast<size_t>(i)], i,
                      [&](int64_t a, int64_t b) { return equal.Equal(a, b); });
    if (seen.num_groups() != before) keep_rows.push_back(i);
  }
  return Take(values, keep_rows);
}

Result<ArrayPtr> UniqueParallel(const ArrayPtr& values,
                                const sim::ParallelOptions& options) {
  BENTO_TRACE_SPAN(kKernel, "unique.parallel");
  const int workers = sim::ResolveWorkers(options);
  if (workers <= 1 || values->length() < 8192) return Unique(values);
  auto schema = std::make_shared<col::Schema>(
      std::vector<col::Field>{{"v", values->type()}});
  BENTO_ASSIGN_OR_RETURN(auto table, Table::Make(schema, {values}));
  BENTO_ASSIGN_OR_RETURN(
      auto keep_rows,
      DistinctRowsPartitioned(table, {"v"}, {"v"},
                              [&](int64_t i) { return values->IsNull(i); },
                              options));
  return TakeParallel(values, keep_rows, options);
}

}  // namespace bento::kern
