#include "kernels/dedup.h"

#include <unordered_map>

#include "columnar/builder.h"
#include "kernels/row_hash.h"
#include "kernels/selection.h"

namespace bento::kern {

Result<TablePtr> DropDuplicates(const TablePtr& table,
                                const std::vector<std::string>& subset) {
  BENTO_ASSIGN_OR_RETURN(auto hashes, HashRows(table, subset));
  std::vector<std::string> cols = subset;
  if (cols.empty()) cols = table->schema()->names();
  BENTO_ASSIGN_OR_RETURN(auto equal, RowEquality::Make(table, cols, table, cols));

  std::unordered_map<uint64_t, std::vector<int64_t>> seen;
  seen.reserve(static_cast<size_t>(table->num_rows()));
  std::vector<int64_t> keep_rows;
  for (int64_t i = 0; i < table->num_rows(); ++i) {
    auto& bucket = seen[hashes[static_cast<size_t>(i)]];
    bool duplicate = false;
    for (int64_t j : bucket) {
      if (equal.Equal(j, i)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      bucket.push_back(i);
      keep_rows.push_back(i);
    }
  }
  return TakeTable(table, keep_rows);
}

Result<ArrayPtr> Unique(const ArrayPtr& values) {
  // Reuse row machinery through a single-column table.
  auto schema = std::make_shared<col::Schema>(
      std::vector<col::Field>{{"v", values->type()}});
  BENTO_ASSIGN_OR_RETURN(auto table, Table::Make(schema, {values}));
  BENTO_ASSIGN_OR_RETURN(auto distinct, DropDuplicates(table, {"v"}));
  // Drop the null representative if present: Unique reports non-null values.
  const ArrayPtr& c = distinct->column(0);
  if (c->null_count() == 0) return c;
  col::BoolBuilder keep;
  keep.Reserve(c->length());
  for (int64_t i = 0; i < c->length(); ++i) keep.Append(c->IsValid(i));
  BENTO_ASSIGN_OR_RETURN(auto mask, keep.Finish());
  return Filter(c, mask);
}

}  // namespace bento::kern
