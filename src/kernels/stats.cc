#include "kernels/stats.h"

#include <algorithm>
#include <cmath>

#include "columnar/builder.h"
#include "simd/simd.h"

namespace bento::kern {

namespace {

struct Moments {
  double sum = 0.0;
  double sum_sq = 0.0;
  double min = 0.0;
  double max = 0.0;
  int64_t count = 0;

  void Add(double v) {
    if (count == 0) {
      min = v;
      max = v;
    } else {
      if (v < min) min = v;
      if (v > max) max = v;
    }
    sum += v;
    sum_sq += v * v;
    ++count;
  }

  void Merge(const Moments& o) {
    if (o.count == 0) return;
    if (count == 0) {
      *this = o;
      return;
    }
    min = std::min(min, o.min);
    max = std::max(max, o.max);
    sum += o.sum;
    sum_sq += o.sum_sq;
    count += o.count;
  }
};

Status CheckAggregatable(const ArrayPtr& values) {
  switch (values->type()) {
    case TypeId::kInt64:
    case TypeId::kFloat64:
    case TypeId::kBool:
    case TypeId::kTimestamp:
      return Status::OK();
    default:
      return Status::TypeError("cannot aggregate ",
                               col::TypeName(values->type()), " column");
  }
}

double CellValue(const Array& a, int64_t i) {
  switch (a.type()) {
    case TypeId::kFloat64:
      return a.float64_data()[i];
    case TypeId::kBool:
      return a.bool_data()[i] != 0 ? 1.0 : 0.0;
    default:
      return static_cast<double>(a.int64_data()[i]);
  }
}

Moments ComputeMoments(const Array& a, int64_t begin, int64_t end) {
  // Numeric columns run through the SIMD moments kernels, whose fixed
  // 4-lane striped summation makes every level (and every worker split)
  // produce the identical floating-point result.
  simd::MomentsPart p;
  switch (a.type()) {
    case TypeId::kFloat64:
      p = simd::MomentsF64(a.float64_data(), a.validity_bits(), begin, end);
      break;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      p = simd::MomentsI64(a.int64_data(), a.validity_bits(), begin, end);
      break;
    default: {
      // kBool (and anything else CellValue understands) stays scalar.
      Moments m;
      for (int64_t i = begin; i < end; ++i) {
        if (!a.IsValid(i)) continue;
        double v = CellValue(a, i);
        if (std::isnan(v)) continue;
        m.Add(v);
      }
      return m;
    }
  }
  Moments m;
  m.sum = p.sum;
  m.sum_sq = p.sum_sq;
  m.count = p.count;
  if (p.count > 0) {
    m.min = p.min;
    m.max = p.max;
  }
  return m;
}

Result<Scalar> MomentsToScalar(const Moments& m, AggKind kind) {
  if (kind == AggKind::kCount) return Scalar::Int(m.count);
  if (m.count == 0) return Scalar::Null();
  switch (kind) {
    case AggKind::kSum:
      return Scalar::Double(m.sum);
    case AggKind::kMean:
      return Scalar::Double(m.sum / static_cast<double>(m.count));
    case AggKind::kMin:
      return Scalar::Double(m.min);
    case AggKind::kMax:
      return Scalar::Double(m.max);
    case AggKind::kStd: {
      if (m.count < 2) return Scalar::Null();
      const double n = static_cast<double>(m.count);
      double var = (m.sum_sq - m.sum * m.sum / n) / (n - 1.0);
      return Scalar::Double(var > 0.0 ? std::sqrt(var) : 0.0);
    }
    case AggKind::kSumSq:
      return Scalar::Double(m.sum_sq);
    case AggKind::kCount:
      break;
  }
  return Scalar::Null();
}

}  // namespace

Result<Scalar> Aggregate(const ArrayPtr& values, AggKind kind) {
  BENTO_RETURN_NOT_OK(CheckAggregatable(values));
  return MomentsToScalar(ComputeMoments(*values, 0, values->length()), kind);
}

Result<Scalar> AggregateParallel(const ArrayPtr& values, AggKind kind,
                                 const sim::ParallelOptions& options) {
  BENTO_RETURN_NOT_OK(CheckAggregatable(values));
  int workers = options.max_workers;
  if (workers <= 0) {
    workers = sim::Session::Current() != nullptr
                  ? sim::Session::Current()->cores()
                  : 1;
  }
  auto ranges = sim::SplitRange(values->length(), workers, 4096);
  if (ranges.size() <= 1) return Aggregate(values, kind);

  std::vector<Moments> partials(ranges.size());
  BENTO_RETURN_NOT_OK(sim::ParallelFor(
      static_cast<int64_t>(ranges.size()),
      [&](int64_t r) {
        auto [b, e] = ranges[static_cast<size_t>(r)];
        partials[static_cast<size_t>(r)] = ComputeMoments(*values, b, e);
        return Status::OK();
      },
      options));
  Moments total;
  for (const Moments& m : partials) total.Merge(m);
  return MomentsToScalar(total, kind);
}

Result<double> Quantile(const ArrayPtr& values, double q) {
  BENTO_RETURN_NOT_OK(CheckAggregatable(values));
  if (q < 0.0 || q > 1.0) return Status::Invalid("quantile q must be in [0,1]");
  std::vector<double> data;
  data.reserve(static_cast<size_t>(values->length()));
  for (int64_t i = 0; i < values->length(); ++i) {
    if (!values->IsValid(i)) continue;
    double v = CellValue(*values, i);
    if (!std::isnan(v)) data.push_back(v);
  }
  if (data.empty()) return Status::Invalid("quantile of empty column");
  std::sort(data.begin(), data.end());
  const double pos = q * static_cast<double>(data.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, data.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return data[lo] * (1.0 - frac) + data[hi] * frac;
}

Result<double> QuantileApprox(const ArrayPtr& values, double q) {
  BENTO_RETURN_NOT_OK(CheckAggregatable(values));
  if (q < 0.0 || q > 1.0) return Status::Invalid("quantile q must be in [0,1]");

  Moments m = ComputeMoments(*values, 0, values->length());
  if (m.count == 0) return Status::Invalid("quantile of empty column");
  if (m.min == m.max) return m.min;

  constexpr int kBins = 2048;
  std::vector<int64_t> bins(kBins, 0);
  const double width = (m.max - m.min) / kBins;
  for (int64_t i = 0; i < values->length(); ++i) {
    if (!values->IsValid(i)) continue;
    double v = CellValue(*values, i);
    if (std::isnan(v)) continue;
    int b = static_cast<int>((v - m.min) / width);
    if (b >= kBins) b = kBins - 1;
    if (b < 0) b = 0;
    ++bins[static_cast<size_t>(b)];
  }
  const double target = q * static_cast<double>(m.count - 1);
  int64_t seen = 0;
  for (int b = 0; b < kBins; ++b) {
    const int64_t in_bin = bins[static_cast<size_t>(b)];
    if (static_cast<double>(seen + in_bin) > target) {
      // Interpolate inside the bin assuming uniform spread.
      const double frac =
          in_bin > 0 ? (target - static_cast<double>(seen)) /
                           static_cast<double>(in_bin)
                     : 0.0;
      return m.min + (static_cast<double>(b) + frac) * width;
    }
    seen += in_bin;
  }
  return m.max;
}

Result<TablePtr> Describe(const TablePtr& table, bool approx_quantiles) {
  col::StringBuilder name_col;
  col::Float64Builder count_col, mean_col, std_col, min_col, p25_col, p50_col,
      p75_col, max_col;

  for (int c = 0; c < table->num_columns(); ++c) {
    const col::Field& field = table->schema()->field(c);
    if (!col::IsNumeric(field.type) && field.type != TypeId::kBool) continue;
    const ArrayPtr& values = table->column(c);
    Moments m = ComputeMoments(*values, 0, values->length());
    name_col.Append(field.name);
    count_col.Append(static_cast<double>(m.count));
    if (m.count == 0) {
      mean_col.AppendNull();
      std_col.AppendNull();
      min_col.AppendNull();
      p25_col.AppendNull();
      p50_col.AppendNull();
      p75_col.AppendNull();
      max_col.AppendNull();
      continue;
    }
    mean_col.Append(m.sum / static_cast<double>(m.count));
    bool std_null = false;
    Scalar std_s = MomentsToScalar(m, AggKind::kStd).ValueOrDie();
    std_null = std_s.is_null();
    if (std_null) {
      std_col.AppendNull();
    } else {
      std_col.Append(std_s.double_value());
    }
    min_col.Append(m.min);
    auto quantile = [&](double q) {
      return approx_quantiles ? QuantileApprox(values, q)
                              : Quantile(values, q);
    };
    BENTO_ASSIGN_OR_RETURN(double p25, quantile(0.25));
    BENTO_ASSIGN_OR_RETURN(double p50, quantile(0.50));
    BENTO_ASSIGN_OR_RETURN(double p75, quantile(0.75));
    p25_col.Append(p25);
    p50_col.Append(p50);
    p75_col.Append(p75);
    max_col.Append(m.max);
  }

  std::vector<col::Field> fields = {
      {"column", TypeId::kString},   {"count", TypeId::kFloat64},
      {"mean", TypeId::kFloat64},    {"std", TypeId::kFloat64},
      {"min", TypeId::kFloat64},     {"25%", TypeId::kFloat64},
      {"50%", TypeId::kFloat64},     {"75%", TypeId::kFloat64},
      {"max", TypeId::kFloat64},
  };
  std::vector<ArrayPtr> columns;
  BENTO_ASSIGN_OR_RETURN(auto a0, name_col.Finish());
  columns.push_back(a0);
  for (col::Float64Builder* b :
       {&count_col, &mean_col, &std_col, &min_col, &p25_col, &p50_col,
        &p75_col, &max_col}) {
    BENTO_ASSIGN_OR_RETURN(auto a, b->Finish());
    columns.push_back(a);
  }
  return Table::Make(std::make_shared<col::Schema>(std::move(fields)),
                     std::move(columns));
}

namespace {

struct ColumnStats {
  bool numeric = false;
  std::string name;
  Moments m;
  double p25 = 0, p50 = 0, p75 = 0;
  bool std_null = true;
  double std_value = 0;
};

Result<ColumnStats> DescribeOneColumn(const col::Field& field,
                                      const ArrayPtr& values,
                                      bool approx_quantiles) {
  ColumnStats cs;
  cs.name = field.name;
  if (!col::IsNumeric(field.type) && field.type != TypeId::kBool) return cs;
  cs.numeric = true;
  cs.m = ComputeMoments(*values, 0, values->length());
  if (cs.m.count == 0) return cs;
  Scalar std_s = MomentsToScalar(cs.m, AggKind::kStd).ValueOrDie();
  cs.std_null = std_s.is_null();
  if (!cs.std_null) cs.std_value = std_s.double_value();
  auto quantile = [&](double q) {
    return approx_quantiles ? QuantileApprox(values, q) : Quantile(values, q);
  };
  BENTO_ASSIGN_OR_RETURN(cs.p25, quantile(0.25));
  BENTO_ASSIGN_OR_RETURN(cs.p50, quantile(0.50));
  BENTO_ASSIGN_OR_RETURN(cs.p75, quantile(0.75));
  return cs;
}

Result<TablePtr> AssembleDescribe(const std::vector<ColumnStats>& stats) {
  col::StringBuilder name_col;
  col::Float64Builder count_col, mean_col, std_col, min_col, p25_col, p50_col,
      p75_col, max_col;
  for (const ColumnStats& cs : stats) {
    if (!cs.numeric) continue;
    name_col.Append(cs.name);
    count_col.Append(static_cast<double>(cs.m.count));
    if (cs.m.count == 0) {
      mean_col.AppendNull();
      std_col.AppendNull();
      min_col.AppendNull();
      p25_col.AppendNull();
      p50_col.AppendNull();
      p75_col.AppendNull();
      max_col.AppendNull();
      continue;
    }
    mean_col.Append(cs.m.sum / static_cast<double>(cs.m.count));
    if (cs.std_null) {
      std_col.AppendNull();
    } else {
      std_col.Append(cs.std_value);
    }
    min_col.Append(cs.m.min);
    p25_col.Append(cs.p25);
    p50_col.Append(cs.p50);
    p75_col.Append(cs.p75);
    max_col.Append(cs.m.max);
  }
  std::vector<col::Field> fields = {
      {"column", TypeId::kString},   {"count", TypeId::kFloat64},
      {"mean", TypeId::kFloat64},    {"std", TypeId::kFloat64},
      {"min", TypeId::kFloat64},     {"25%", TypeId::kFloat64},
      {"50%", TypeId::kFloat64},     {"75%", TypeId::kFloat64},
      {"max", TypeId::kFloat64},
  };
  std::vector<ArrayPtr> columns;
  BENTO_ASSIGN_OR_RETURN(auto a0, name_col.Finish());
  columns.push_back(a0);
  for (col::Float64Builder* b :
       {&count_col, &mean_col, &std_col, &min_col, &p25_col, &p50_col,
        &p75_col, &max_col}) {
    BENTO_ASSIGN_OR_RETURN(auto a, b->Finish());
    columns.push_back(a);
  }
  return Table::Make(std::make_shared<col::Schema>(std::move(fields)),
                     std::move(columns));
}

}  // namespace

Result<TablePtr> DescribeParallel(const TablePtr& table, bool approx_quantiles,
                                  const sim::ParallelOptions& options) {
  std::vector<ColumnStats> stats(static_cast<size_t>(table->num_columns()));
  BENTO_RETURN_NOT_OK(sim::ParallelFor(
      table->num_columns(),
      [&](int64_t c) -> Status {
        BENTO_ASSIGN_OR_RETURN(
            stats[static_cast<size_t>(c)],
            DescribeOneColumn(table->schema()->field(static_cast<int>(c)),
                              table->column(static_cast<int>(c)),
                              approx_quantiles));
        return Status::OK();
      },
      options));
  return AssembleDescribe(stats);
}

}  // namespace bento::kern
