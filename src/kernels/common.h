#ifndef BENTO_KERNELS_COMMON_H_
#define BENTO_KERNELS_COMMON_H_

#include <string>
#include <vector>

#include "columnar/array.h"
#include "columnar/scalar.h"
#include "columnar/table.h"

namespace bento::kern {

using col::Array;
using col::ArrayPtr;
using col::Scalar;
using col::Table;
using col::TablePtr;
using col::TypeId;

/// \brief Aggregations supported by group-by, describe, and pivot.
/// kSumSq (sum of squares) exists for decomposable partial aggregation in
/// the streaming engines (mean/std merge from sum/count/sumsq partials).
enum class AggKind { kSum, kMean, kMin, kMax, kCount, kStd, kSumSq };

const char* AggName(AggKind kind);

/// \brief Comparison operators used by query predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

enum class JoinType { kInner, kLeft };

/// \brief One sort key: column plus direction. Nulls always sort last.
struct SortKey {
  std::string column;
  bool ascending = true;
};

/// \brief One aggregation request: input column + function.
struct AggSpec {
  std::string column;
  AggKind kind;
  /// Output column name; defaults to "<column>_<agg>".
  std::string output_name;
};

}  // namespace bento::kern

#endif  // BENTO_KERNELS_COMMON_H_
