#ifndef BENTO_KERNELS_STRING_OPS_H_
#define BENTO_KERNELS_STRING_OPS_H_

#include <string>

#include "kernels/common.h"

namespace bento::kern {

/// \brief Execution flavor of string kernels.
///
///  - kRowObjects: per-row materialization into std::string before the
///    operation (the Python object-dtype model: Pandas).
///  - kColumnar: zero-copy operation directly over the contiguous chars
///    buffer (the Arrow/Vaex model) — the fast path the paper credits for
///    Vaex's `str.contains` wins.
enum class StringEngine { kRowObjects, kColumnar };

/// \brief Boolean mask: does each value contain `pattern` (plain substring,
/// `case_sensitive` optional)? Null in, null out.
Result<ArrayPtr> Contains(const ArrayPtr& values, const std::string& pattern,
                          bool case_sensitive = true,
                          StringEngine engine = StringEngine::kColumnar);

/// \brief ASCII lower-cased copy of the column.
Result<ArrayPtr> Lower(const ArrayPtr& values,
                       StringEngine engine = StringEngine::kColumnar);

/// \brief Per-value substring replacement.
Result<ArrayPtr> ReplaceSubstring(const ArrayPtr& values,
                                  const std::string& from,
                                  const std::string& to);

/// \brief String length of each value (int64; null in, null out).
Result<ArrayPtr> StringLength(const ArrayPtr& values);

}  // namespace bento::kern

#endif  // BENTO_KERNELS_STRING_OPS_H_
