#ifndef BENTO_KERNELS_ENCODE_H_
#define BENTO_KERNELS_ENCODE_H_

#include <string>
#include <vector>

#include "kernels/common.h"

namespace bento::kern {

/// \brief One-hot encoding (`get_dummies`): replaces string/categorical
/// column `column` with one int64 0/1 column per distinct value, named
/// "<column>_<value>". Values are discovered in first-seen order;
/// `max_categories` caps the expansion (0 = unlimited).
Result<TablePtr> GetDummies(const TablePtr& table, const std::string& column,
                            int max_categories = 0);

/// \brief One-hot encoding against a pre-discovered category list (the
/// two-pass streaming path: categories come from a first pass over the
/// stream, chunks encode independently in the second).
Result<TablePtr> GetDummiesWithCategories(
    const TablePtr& table, const std::string& column,
    const std::vector<std::string>& categories);

/// \brief Categorical encoding (`cat.codes`): int64 dictionary code of each
/// value (-1-free: nulls stay null). Accepts string or categorical input.
Result<ArrayPtr> CatCodes(const ArrayPtr& values);

/// \brief Categorical codes against a fixed dictionary (streaming second
/// pass); values outside the dictionary encode as null.
Result<ArrayPtr> CatCodesWithDict(const ArrayPtr& values,
                                  const std::vector<std::string>& dict);

/// \brief Dictionary-encodes a string column into kCategorical (`astype
/// ('category')`).
Result<ArrayPtr> DictEncode(const ArrayPtr& values);

}  // namespace bento::kern

#endif  // BENTO_KERNELS_ENCODE_H_
