#ifndef BENTO_KERNELS_PIVOT_H_
#define BENTO_KERNELS_PIVOT_H_

#include <string>

#include "kernels/common.h"

namespace bento::kern {

/// \brief `pivot_table`: one output row per distinct `index` value, one
/// output column per distinct `columns` value (named "<values>_<v>") holding
/// agg(`values`) of the matching cells; combinations with no input rows are
/// null. Distinct values appear in first-seen order.
Result<TablePtr> PivotTable(const TablePtr& table, const std::string& index,
                            const std::string& columns,
                            const std::string& values,
                            AggKind agg = AggKind::kMean);

}  // namespace bento::kern

#endif  // BENTO_KERNELS_PIVOT_H_
