#ifndef BENTO_KERNELS_FLAT_INDEX_H_
#define BENTO_KERNELS_FLAT_INDEX_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "simd/hash.h"
#include "sim/parallel.h"
#include "util/result.h"

namespace bento::kern {

// ---------------------------------------------------------------------------
// Word-at-a-time 64-bit hashing (wyhash-style)
// ---------------------------------------------------------------------------
//
// The scalar hash bodies live in simd/hash.h so the vectorized hash-mix
// kernels in src/simd share the exact same definition; the kernel layer
// keeps its historical names as aliases.

namespace detail {

using simd::Load32;
using simd::Load64;
using simd::Mum;
using simd::kWySecret0;
using simd::kWySecret1;
using simd::kWySecret2;

/// Test hook: when active, HashRows and StringInterner hash every key to
/// one constant, forcing worst-case collisions so the equality-fallback
/// paths of every hash consumer are exercised end to end.
bool ForcedHashCollisionsActive();
void SetForcedHashCollisions(bool active);

}  // namespace detail

/// \brief RAII guard for the forced-collision test mode (see
/// detail::ForcedHashCollisionsActive). Process-global; tests using it must
/// not run hash kernels concurrently in other threads.
class ScopedForcedHashCollisions {
 public:
  ScopedForcedHashCollisions() { detail::SetForcedHashCollisions(true); }
  ~ScopedForcedHashCollisions() { detail::SetForcedHashCollisions(false); }
  ScopedForcedHashCollisions(const ScopedForcedHashCollisions&) = delete;
  ScopedForcedHashCollisions& operator=(const ScopedForcedHashCollisions&) =
      delete;
};

using simd::Hash64;
using simd::HashWord64;

// ---------------------------------------------------------------------------
// FlatIndex: open-addressing build/probe index over table rows
// ---------------------------------------------------------------------------

/// \brief A cache-conscious hash index from row keys to chains of row ids —
/// the build side of HashJoin and the lookup structure behind every
/// hash-shaped preparator.
///
/// Layout: one contiguous slot array (open addressing, linear probing,
/// power-of-two capacity, <= 2/3 load). Each slot stores the full 64-bit key
/// hash inline plus the first and last row of its duplicate chain; duplicate
/// rows are linked through a single `next` array indexed by row id (an
/// index-linked list) instead of per-bucket heap-allocated vectors. A probe
/// therefore touches one cache line per distinct non-colliding key, and
/// chain traversal is a linear walk over `next`.
///
/// Distinct keys with equal 64-bit hashes occupy distinct slots: insertion
/// resolves full-hash matches through the caller's row-equality functor and
/// keeps probing on mismatch, so collision correctness never depends on the
/// hash. Chains preserve insertion (row) order — consumers keep the
/// first-seen / stable output semantics the differential suite locks down.
///
/// The table is optionally radix-partitioned on the top hash bits
/// (`BuildPartitioned`): partitions are disjoint by construction, so the
/// build fans out over sim::ParallelFor with no synchronization beyond the
/// partition scatter — paper-faithful makespan credit in kSimulated mode,
/// real work-stealing threads in kReal mode.
class FlatIndex {
 public:
  static constexpr int64_t kNone = -1;

  FlatIndex() = default;

  /// \brief Serial build over `hashes[0..n)`. `keep(row)` filters rows
  /// (join build drops null keys); `equal(a, b)` decides whether build rows
  /// a and b carry the same key.
  template <typename Keep, typename Equal>
  void Build(const std::vector<uint64_t>& hashes, Keep&& keep, Equal&& equal) {
    BENTO_TRACE_SPAN(kKernel, "flat_index.build");
    const int64_t n = static_cast<int64_t>(hashes.size());
    parts_.assign(1, Part());
    part_shift_ = 64;  // single partition: no radix bits consumed
    next_.assign(static_cast<size_t>(n), kNone);
    Part* part = &parts_[0];
    part->Reset(n);  // sized for n keys up front, so slots never reallocate
    for (int64_t i = 0; i < n; ++i) {
      if (i + kPrefetchDistance < n) {
        part->PrefetchSlot(hashes[static_cast<size_t>(i + kPrefetchDistance)]);
      }
      if (!keep(i)) continue;
      InsertInto(part, hashes[static_cast<size_t>(i)], i, equal);
    }
    ReportBuildStats();
  }

  /// \brief Radix-partitioned parallel build: rows are scattered into
  /// 2^k partitions by their top hash bits (order-preserving within each
  /// partition), then every partition builds its private slot array in one
  /// ParallelFor task. Falls back to the serial path for small inputs.
  /// `equal` must be safe to call concurrently on distinct rows (row data is
  /// immutable, so RowEquality qualifies).
  template <typename Keep, typename Equal>
  Status BuildPartitioned(const std::vector<uint64_t>& hashes, Keep&& keep,
                          Equal&& equal, const sim::ParallelOptions& options) {
    BENTO_TRACE_SPAN(kKernel, "flat_index.build_partitioned");
    const int64_t n = static_cast<int64_t>(hashes.size());
    const int parts = PlanPartitions(n, options);
    if (parts <= 1) {
      Build(hashes, keep, equal);
      return Status::OK();
    }
    // Pass 1: order-preserving scatter of kept rows into partition row
    // lists (serial: one sweep of the hash vector, branch-free partition
    // id from the top bits).
    const int shift = PartShiftFor(parts);
    std::vector<std::vector<int64_t>> part_rows(static_cast<size_t>(parts));
    for (auto& v : part_rows) v.reserve(static_cast<size_t>(n / parts + 8));
    for (int64_t i = 0; i < n; ++i) {
      if (!keep(i)) continue;
      part_rows[hashes[static_cast<size_t>(i)] >> shift].push_back(i);
    }
    // Pass 2: per-partition builds, one task each. Tasks write disjoint
    // state: their own Part and disjoint `next_` entries (a row belongs to
    // exactly one partition).
    parts_.assign(static_cast<size_t>(parts), Part());
    part_shift_ = shift;
    next_.assign(static_cast<size_t>(n), kNone);
    Status st = sim::ParallelFor(
        parts,
        [&](int64_t p) {
          Part* part = &parts_[static_cast<size_t>(p)];
          const auto& rows = part_rows[static_cast<size_t>(p)];
          part->Reset(static_cast<int64_t>(rows.size()));
          const int64_t m = static_cast<int64_t>(rows.size());
          for (int64_t r = 0; r < m; ++r) {
            if (r + kPrefetchDistance < m) {
              part->PrefetchSlot(hashes[static_cast<size_t>(
                  rows[static_cast<size_t>(r + kPrefetchDistance)])]);
            }
            const int64_t row = rows[static_cast<size_t>(r)];
            InsertInto(part, hashes[static_cast<size_t>(row)], row, equal);
          }
          return Status::OK();
        },
        options);
    ReportBuildStats();
    return st;
  }

  /// \brief First build row whose key matches probe hash `h`, resolving
  /// full-hash ties through `equal(build_row)`; kNone when absent. Follow
  /// the duplicate chain with Next().
  template <typename Equal>
  int64_t Find(uint64_t h, Equal&& equal) const {
    const Part& part = parts_[PartOf(h)];
    if (part.keys == 0) return kNone;
    uint64_t s = h & part.mask;
    while (true) {
      const Slot& slot = part.slots[s];
      if (slot.head == kNone) return kNone;
      if (slot.hash == h && equal(slot.head)) return slot.head;
      s = (s + 1) & part.mask;
    }
  }

  /// \brief Next row in the duplicate chain (insertion order); kNone at end.
  int64_t Next(int64_t row) const { return next_[static_cast<size_t>(row)]; }

  /// \brief Number of distinct keys across all partitions.
  int64_t num_keys() const {
    int64_t k = 0;
    for (const Part& p : parts_) k += p.keys;
    return k;
  }

  int num_partitions() const { return static_cast<int>(parts_.size()); }

  /// \brief Partition fan-out used for `n` rows under `options` (exposed
  /// for tests and DESIGN.md cost accounting): the worker count rounded up
  /// to a power of two, capped at 64 and so that partitions keep >= 4k rows.
  static int PlanPartitions(int64_t n, const sim::ParallelOptions& options);

 private:
  struct Slot {
    uint64_t hash = 0;
    int64_t head = kNone;  // first row with this key
    int64_t tail = kNone;  // last row with this key (chain append point)
  };

  /// How far ahead build loops prefetch the home slot of an upcoming row.
  /// Slot probes are random touches into an array that can exceed cache;
  /// issuing the load ~8 inserts early hides most of the miss latency.
  static constexpr int64_t kPrefetchDistance = 8;

  /// One radix partition: a private open-addressing slot array.
  struct Part {
    std::vector<Slot> slots;
    uint64_t mask = 0;
    int64_t keys = 0;
    // Build-side probe statistics: plain ints — each Part is written by
    // exactly one build task; ReportBuildStats() flushes the totals to the
    // MetricsRegistry after the build completes.
    int64_t probes = 0;
    int64_t collisions = 0;

    void Reset(int64_t expected_rows);

    void PrefetchSlot(uint64_t h) const {
#if defined(__GNUC__) || defined(__clang__)
      __builtin_prefetch(&slots[h & mask], 1 /*write*/, 1);
#else
      (void)h;
#endif
    }
  };

  static int PartShiftFor(int parts);  // 64 - log2(parts)

  size_t PartOf(uint64_t h) const {
    return part_shift_ >= 64 ? 0 : static_cast<size_t>(h >> part_shift_);
  }

  template <typename Equal>
  void InsertInto(Part* part, uint64_t h, int64_t row, Equal&& equal) {
    uint64_t s = h & part->mask;
    while (true) {
      ++part->probes;
      Slot& slot = part->slots[s];
      if (slot.head == kNone) {
        slot.hash = h;
        slot.head = row;
        slot.tail = row;
        ++part->keys;
        return;
      }
      if (slot.hash == h && equal(slot.head, row)) {
        next_[static_cast<size_t>(slot.tail)] = row;
        slot.tail = row;
        return;
      }
      ++part->collisions;
      s = (s + 1) & part->mask;
    }
  }

  void ReportBuildStats() const;

  std::vector<Part> parts_;
  std::vector<int64_t> next_;
  int part_shift_ = 64;
};

// ---------------------------------------------------------------------------
// FlatGrouper: incremental find-or-insert -> dense group ids
// ---------------------------------------------------------------------------

/// \brief Open-addressing grouper: maps each row to a dense group id in
/// first-seen order (the group-by / drop-duplicates access pattern). Slots
/// store {hash, group}; the first row of each group is its representative
/// for equality fallback. Grows by doubling at 2/3 load; rehashing moves
/// slots by stored hash only (distinct keys sharing a full hash keep
/// distinct slots, and probes re-resolve them through `equal`).
class FlatGrouper {
 public:
  static constexpr int64_t kNone = -1;

  explicit FlatGrouper(int64_t expected_groups = 0) {
    Reset(expected_groups);
  }
  /// Flushes accumulated probe statistics to the MetricsRegistry
  /// ("flat_grouper.probes" / "flat_grouper.collisions"). Groupers are
  /// single-owner stack locals, so destruction is the natural flush point.
  ~FlatGrouper();

  FlatGrouper(const FlatGrouper&) = delete;
  FlatGrouper& operator=(const FlatGrouper&) = delete;

  void Reset(int64_t expected_groups);

  /// \brief Group id of `row`, inserting a new group when unseen.
  /// `equal(a, b)` compares the keys of rows a and b.
  template <typename Equal>
  int64_t FindOrInsert(uint64_t h, int64_t row, Equal&& equal) {
    if (num_groups_ * 3 >= static_cast<int64_t>(slots_.size()) * 2) Grow();
    uint64_t s = h & mask_;
    while (true) {
      ++probes_;
      Slot& slot = slots_[s];
      if (slot.group == kNone) {
        slot.hash = h;
        slot.group = num_groups_;
        representatives_.push_back(row);
        return num_groups_++;
      }
      if (slot.hash == h &&
          equal(representatives_[static_cast<size_t>(slot.group)], row)) {
        return slot.group;
      }
      ++collisions_;
      s = (s + 1) & mask_;
    }
  }

  /// \brief Group id of `row` without inserting; kNone when unseen.
  template <typename Equal>
  int64_t Find(uint64_t h, int64_t row, Equal&& equal) const {
    uint64_t s = h & mask_;
    while (true) {
      const Slot& slot = slots_[s];
      if (slot.group == kNone) return kNone;
      if (slot.hash == h &&
          equal(representatives_[static_cast<size_t>(slot.group)], row)) {
        return slot.group;
      }
      s = (s + 1) & mask_;
    }
  }

  int64_t num_groups() const { return num_groups_; }

  /// First row of each group, in group-id (= first-seen) order.
  const std::vector<int64_t>& representatives() const {
    return representatives_;
  }

 private:
  struct Slot {
    uint64_t hash = 0;
    int64_t group = kNone;
  };

  void Grow();

  std::vector<Slot> slots_;
  std::vector<int64_t> representatives_;
  uint64_t mask_ = 0;
  int64_t num_groups_ = 0;
  // Plain ints: groupers are used from one thread; flushed by ~FlatGrouper.
  int64_t probes_ = 0;
  int64_t collisions_ = 0;
};

// ---------------------------------------------------------------------------
// StringInterner: string_view -> dense id with arena storage
// ---------------------------------------------------------------------------

/// \brief Flat open-addressing map from strings to dense ids in first-seen
/// order, for dictionary/category building (categorical cast, one-hot and
/// ordinal encode, pivot axis labels).
///
/// Lookups are heterogeneous: probes take a `std::string_view` and compare
/// against arena bytes, so the probe path never materializes a temporary
/// `std::string` (the old `unordered_map<std::string, int>` paths paid one
/// malloc + copy per row). Interned bytes live in one growing char arena;
/// per-id hashes are cached for O(n) rehash on growth.
class StringInterner {
 public:
  static constexpr int32_t kNone = -1;

  explicit StringInterner(int64_t expected = 0) { Reset(expected); }

  void Reset(int64_t expected);

  /// \brief Id of `s`, interning it when unseen.
  int32_t FindOrInsert(std::string_view s);

  /// \brief Id of `s` without interning; kNone when absent.
  int32_t Find(std::string_view s) const;

  int64_t size() const { return static_cast<int64_t>(offsets_.size()) - 1; }

  std::string_view View(int32_t id) const {
    const size_t b = static_cast<size_t>(offsets_[static_cast<size_t>(id)]);
    const size_t e = static_cast<size_t>(offsets_[static_cast<size_t>(id) + 1]);
    return std::string_view(arena_.data() + b, e - b);
  }

  /// \brief Copies the interned strings out in id order (dictionary
  /// hand-off to CategoricalBuilder / GetDummies column naming).
  std::vector<std::string> ToStrings() const;

 private:
  struct Slot {
    uint64_t hash = 0;
    int32_t id = kNone;
  };

  void Grow();
  uint64_t HashOf(std::string_view s) const;

  std::vector<Slot> slots_;
  std::string arena_;
  std::vector<int64_t> offsets_ = {0};
  std::vector<uint64_t> hashes_;  // per-id cache for rehash
  uint64_t mask_ = 0;
};

}  // namespace bento::kern

#endif  // BENTO_KERNELS_FLAT_INDEX_H_
