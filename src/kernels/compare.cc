#include "kernels/compare.h"

#include "columnar/builder.h"

namespace bento::kern {

namespace {

template <typename T>
bool ApplyOp(CompareOp op, const T& a, const T& b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

Result<ArrayPtr> CompareScalar(const ArrayPtr& values, CompareOp op,
                               const Scalar& literal) {
  col::BoolBuilder out;
  out.Reserve(values->length());

  if (literal.is_null()) {
    // Comparisons against null are null everywhere (SQL semantics).
    for (int64_t i = 0; i < values->length(); ++i) out.AppendNull();
    return out.Finish();
  }

  switch (values->type()) {
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      BENTO_ASSIGN_OR_RETURN(double rhs, literal.AsDouble());
      const int64_t* data = values->int64_data();
      for (int64_t i = 0; i < values->length(); ++i) {
        out.AppendMaybe(ApplyOp(op, static_cast<double>(data[i]), rhs),
                        values->IsValid(i));
      }
      break;
    }
    case TypeId::kFloat64: {
      BENTO_ASSIGN_OR_RETURN(double rhs, literal.AsDouble());
      const double* data = values->float64_data();
      for (int64_t i = 0; i < values->length(); ++i) {
        out.AppendMaybe(ApplyOp(op, data[i], rhs), values->IsValid(i));
      }
      break;
    }
    case TypeId::kBool: {
      if (literal.kind() != Scalar::Kind::kBool) {
        return Status::TypeError("bool column compared to non-bool literal");
      }
      const uint8_t* data = values->bool_data();
      for (int64_t i = 0; i < values->length(); ++i) {
        out.AppendMaybe(ApplyOp(op, data[i] != 0, literal.bool_value()),
                        values->IsValid(i));
      }
      break;
    }
    case TypeId::kString: {
      if (literal.kind() != Scalar::Kind::kString) {
        return Status::TypeError("string column compared to non-string literal");
      }
      std::string_view rhs = literal.string_value();
      for (int64_t i = 0; i < values->length(); ++i) {
        out.AppendMaybe(values->IsValid(i) && ApplyOp(op, values->GetView(i), rhs),
                        values->IsValid(i));
      }
      break;
    }
    case TypeId::kCategorical: {
      if (literal.kind() != Scalar::Kind::kString) {
        return Status::TypeError(
            "categorical column compared to non-string literal");
      }
      const auto& dict = values->dictionary();
      std::string_view rhs = literal.string_value();
      for (int64_t i = 0; i < values->length(); ++i) {
        if (!values->IsValid(i)) {
          out.AppendNull();
          continue;
        }
        std::string_view lhs = (*dict)[static_cast<size_t>(values->codes_data()[i])];
        out.Append(ApplyOp(op, lhs, rhs));
      }
      break;
    }
  }
  return out.Finish();
}

Result<ArrayPtr> CompareArrays(const ArrayPtr& left, CompareOp op,
                               const ArrayPtr& right) {
  if (left->length() != right->length()) {
    return Status::Invalid("compare length mismatch");
  }
  col::BoolBuilder out;
  out.Reserve(left->length());

  auto both_valid = [&](int64_t i) {
    return left->IsValid(i) && right->IsValid(i);
  };

  const bool numeric = col::IsNumeric(left->type()) ||
                       left->type() == TypeId::kTimestamp;
  const bool numeric_rhs = col::IsNumeric(right->type()) ||
                           right->type() == TypeId::kTimestamp;
  if (numeric && numeric_rhs) {
    auto get = [](const ArrayPtr& a, int64_t i) {
      return a->type() == TypeId::kFloat64
                 ? a->float64_data()[i]
                 : static_cast<double>(a->int64_data()[i]);
    };
    for (int64_t i = 0; i < left->length(); ++i) {
      out.AppendMaybe(ApplyOp(op, get(left, i), get(right, i)), both_valid(i));
    }
    return out.Finish();
  }
  if (left->type() == TypeId::kString && right->type() == TypeId::kString) {
    for (int64_t i = 0; i < left->length(); ++i) {
      out.AppendMaybe(
          both_valid(i) && ApplyOp(op, left->GetView(i), right->GetView(i)),
          both_valid(i));
    }
    return out.Finish();
  }
  if (left->type() == TypeId::kBool && right->type() == TypeId::kBool) {
    for (int64_t i = 0; i < left->length(); ++i) {
      out.AppendMaybe(
          ApplyOp(op, left->bool_data()[i] != 0, right->bool_data()[i] != 0),
          both_valid(i));
    }
    return out.Finish();
  }
  return Status::TypeError("cannot compare ", col::TypeName(left->type()),
                           " with ", col::TypeName(right->type()));
}

namespace {

Result<ArrayPtr> BooleanBinary(const ArrayPtr& left, const ArrayPtr& right,
                               bool is_and) {
  if (left->type() != TypeId::kBool || right->type() != TypeId::kBool) {
    return Status::TypeError("boolean op requires bool inputs");
  }
  if (left->length() != right->length()) {
    return Status::Invalid("boolean op length mismatch");
  }
  col::BoolBuilder out;
  out.Reserve(left->length());
  for (int64_t i = 0; i < left->length(); ++i) {
    const bool lv = left->IsValid(i);
    const bool rv = right->IsValid(i);
    const bool l = lv && left->bool_data()[i] != 0;
    const bool r = rv && right->bool_data()[i] != 0;
    if (is_and) {
      // Kleene logic: false AND anything = false.
      if ((lv && !l) || (rv && !r)) {
        out.Append(false);
      } else if (lv && rv) {
        out.Append(l && r);
      } else {
        out.AppendNull();
      }
    } else {
      if ((lv && l) || (rv && r)) {
        out.Append(true);
      } else if (lv && rv) {
        out.Append(l || r);
      } else {
        out.AppendNull();
      }
    }
  }
  return out.Finish();
}

}  // namespace

Result<ArrayPtr> BooleanAnd(const ArrayPtr& left, const ArrayPtr& right) {
  return BooleanBinary(left, right, /*is_and=*/true);
}

Result<ArrayPtr> BooleanOr(const ArrayPtr& left, const ArrayPtr& right) {
  return BooleanBinary(left, right, /*is_and=*/false);
}

Result<ArrayPtr> BooleanNot(const ArrayPtr& values) {
  if (values->type() != TypeId::kBool) {
    return Status::TypeError("NOT requires bool input");
  }
  col::BoolBuilder out;
  out.Reserve(values->length());
  for (int64_t i = 0; i < values->length(); ++i) {
    out.AppendMaybe(values->bool_data()[i] == 0, values->IsValid(i));
  }
  return out.Finish();
}

}  // namespace bento::kern
