#include "kernels/compare.h"

#include "columnar/builder.h"
#include "simd/simd.h"

namespace bento::kern {

namespace {

template <typename T>
bool ApplyOp(CompareOp op, const T& a, const T& b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

simd::Cmp ToSimdCmp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return simd::Cmp::kEq;
    case CompareOp::kNe:
      return simd::Cmp::kNe;
    case CompareOp::kLt:
      return simd::Cmp::kLt;
    case CompareOp::kLe:
      return simd::Cmp::kLe;
    case CompareOp::kGt:
      return simd::Cmp::kGt;
    case CompareOp::kGe:
      return simd::Cmp::kGe;
  }
  return simd::Cmp::kEq;
}

}  // namespace

Result<ArrayPtr> CompareScalar(const ArrayPtr& values, CompareOp op,
                               const Scalar& literal) {
  col::BoolBuilder out;
  out.Reserve(values->length());

  if (literal.is_null()) {
    // Comparisons against null are null everywhere (SQL semantics).
    for (int64_t i = 0; i < values->length(); ++i) out.AppendNull();
    return out.Finish();
  }

  switch (values->type()) {
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      // Vectorized compare writing one 0/1 byte per row; the validity
      // bitmap is shared with the input (nulls stay null).
      BENTO_ASSIGN_OR_RETURN(double rhs, literal.AsDouble());
      const int64_t n = values->length();
      BENTO_ASSIGN_OR_RETURN(auto data,
                             col::Buffer::Allocate(static_cast<uint64_t>(n)));
      simd::CompareI64(values->int64_data(), n, ToSimdCmp(op), rhs,
                       data->mutable_data());
      return Array::MakeFixed(TypeId::kBool, n, std::move(data),
                              values->validity_buffer(), values->null_count());
    }
    case TypeId::kFloat64: {
      BENTO_ASSIGN_OR_RETURN(double rhs, literal.AsDouble());
      const int64_t n = values->length();
      BENTO_ASSIGN_OR_RETURN(auto data,
                             col::Buffer::Allocate(static_cast<uint64_t>(n)));
      simd::CompareF64(values->float64_data(), n, ToSimdCmp(op), rhs,
                       data->mutable_data());
      return Array::MakeFixed(TypeId::kBool, n, std::move(data),
                              values->validity_buffer(), values->null_count());
    }
    case TypeId::kBool: {
      if (literal.kind() != Scalar::Kind::kBool) {
        return Status::TypeError("bool column compared to non-bool literal");
      }
      const uint8_t* data = values->bool_data();
      for (int64_t i = 0; i < values->length(); ++i) {
        out.AppendMaybe(ApplyOp(op, data[i] != 0, literal.bool_value()),
                        values->IsValid(i));
      }
      break;
    }
    case TypeId::kString: {
      if (literal.kind() != Scalar::Kind::kString) {
        return Status::TypeError("string column compared to non-string literal");
      }
      std::string_view rhs = literal.string_value();
      for (int64_t i = 0; i < values->length(); ++i) {
        out.AppendMaybe(values->IsValid(i) && ApplyOp(op, values->GetView(i), rhs),
                        values->IsValid(i));
      }
      break;
    }
    case TypeId::kCategorical: {
      if (literal.kind() != Scalar::Kind::kString) {
        return Status::TypeError(
            "categorical column compared to non-string literal");
      }
      // One string compare per dictionary entry, then an integer lookup per
      // row — the dictionary is tiny next to the column.
      const auto& dict = values->dictionary();
      std::string_view rhs = literal.string_value();
      std::vector<uint8_t> lut(dict->size());
      for (size_t c = 0; c < dict->size(); ++c) {
        lut[c] = ApplyOp<std::string_view>(op, (*dict)[c], rhs) ? 1 : 0;
      }
      const int32_t* codes = values->codes_data();
      for (int64_t i = 0; i < values->length(); ++i) {
        if (!values->IsValid(i)) {
          out.AppendNull();
          continue;
        }
        out.Append(lut[static_cast<size_t>(codes[i])] != 0);
      }
      break;
    }
  }
  return out.Finish();
}

Result<ArrayPtr> CompareArrays(const ArrayPtr& left, CompareOp op,
                               const ArrayPtr& right) {
  if (left->length() != right->length()) {
    return Status::Invalid("compare length mismatch");
  }
  col::BoolBuilder out;
  out.Reserve(left->length());

  auto both_valid = [&](int64_t i) {
    return left->IsValid(i) && right->IsValid(i);
  };

  const bool numeric = col::IsNumeric(left->type()) ||
                       left->type() == TypeId::kTimestamp;
  const bool numeric_rhs = col::IsNumeric(right->type()) ||
                           right->type() == TypeId::kTimestamp;
  if (numeric && numeric_rhs) {
    auto get = [](const ArrayPtr& a, int64_t i) {
      return a->type() == TypeId::kFloat64
                 ? a->float64_data()[i]
                 : static_cast<double>(a->int64_data()[i]);
    };
    for (int64_t i = 0; i < left->length(); ++i) {
      out.AppendMaybe(ApplyOp(op, get(left, i), get(right, i)), both_valid(i));
    }
    return out.Finish();
  }
  if (left->type() == TypeId::kString && right->type() == TypeId::kString) {
    for (int64_t i = 0; i < left->length(); ++i) {
      out.AppendMaybe(
          both_valid(i) && ApplyOp(op, left->GetView(i), right->GetView(i)),
          both_valid(i));
    }
    return out.Finish();
  }
  if (left->type() == TypeId::kBool && right->type() == TypeId::kBool) {
    for (int64_t i = 0; i < left->length(); ++i) {
      out.AppendMaybe(
          ApplyOp(op, left->bool_data()[i] != 0, right->bool_data()[i] != 0),
          both_valid(i));
    }
    return out.Finish();
  }
  return Status::TypeError("cannot compare ", col::TypeName(left->type()),
                           " with ", col::TypeName(right->type()));
}

namespace {

Result<ArrayPtr> BooleanBinary(const ArrayPtr& left, const ArrayPtr& right,
                               bool is_and) {
  if (left->type() != TypeId::kBool || right->type() != TypeId::kBool) {
    return Status::TypeError("boolean op requires bool inputs");
  }
  if (left->length() != right->length()) {
    return Status::Invalid("boolean op length mismatch");
  }
  if (left->null_count() == 0 && right->null_count() == 0) {
    // Null-free inputs degenerate to plain byte-wise AND/OR.
    const int64_t n = left->length();
    BENTO_ASSIGN_OR_RETURN(auto data,
                           col::Buffer::Allocate(static_cast<uint64_t>(n)));
    if (is_and) {
      simd::BoolAndBytes(left->bool_data(), right->bool_data(),
                         data->mutable_data(), n);
    } else {
      simd::BoolOrBytes(left->bool_data(), right->bool_data(),
                        data->mutable_data(), n);
    }
    return Array::MakeFixed(TypeId::kBool, n, std::move(data), nullptr, 0);
  }
  col::BoolBuilder out;
  out.Reserve(left->length());
  for (int64_t i = 0; i < left->length(); ++i) {
    const bool lv = left->IsValid(i);
    const bool rv = right->IsValid(i);
    const bool l = lv && left->bool_data()[i] != 0;
    const bool r = rv && right->bool_data()[i] != 0;
    if (is_and) {
      // Kleene logic: false AND anything = false.
      if ((lv && !l) || (rv && !r)) {
        out.Append(false);
      } else if (lv && rv) {
        out.Append(l && r);
      } else {
        out.AppendNull();
      }
    } else {
      if ((lv && l) || (rv && r)) {
        out.Append(true);
      } else if (lv && rv) {
        out.Append(l || r);
      } else {
        out.AppendNull();
      }
    }
  }
  return out.Finish();
}

}  // namespace

Result<ArrayPtr> BooleanAnd(const ArrayPtr& left, const ArrayPtr& right) {
  return BooleanBinary(left, right, /*is_and=*/true);
}

Result<ArrayPtr> BooleanOr(const ArrayPtr& left, const ArrayPtr& right) {
  return BooleanBinary(left, right, /*is_and=*/false);
}

Result<ArrayPtr> BooleanNot(const ArrayPtr& values) {
  if (values->type() != TypeId::kBool) {
    return Status::TypeError("NOT requires bool input");
  }
  const int64_t n = values->length();
  BENTO_ASSIGN_OR_RETURN(auto data,
                         col::Buffer::Allocate(static_cast<uint64_t>(n)));
  simd::BoolNotBytes(values->bool_data(), data->mutable_data(), n);
  return Array::MakeFixed(TypeId::kBool, n, std::move(data),
                          values->validity_buffer(), values->null_count());
}

}  // namespace bento::kern
