#ifndef BENTO_KERNELS_STATS_H_
#define BENTO_KERNELS_STATS_H_

#include <vector>

#include "kernels/common.h"
#include "sim/parallel.h"

namespace bento::kern {

/// \brief Single aggregate of one column (nulls and NaN skipped).
/// Returns a null scalar for empty/all-null inputs (count returns 0).
Result<Scalar> Aggregate(const ArrayPtr& values, AggKind kind);

/// \brief q-th quantile (0 <= q <= 1) of a numeric column by linear
/// interpolation over the sorted non-null values (the NumPy default used by
/// the outlier-locating preparator).
Result<double> Quantile(const ArrayPtr& values, double q);

/// \brief Single-pass histogram quantile: min/max scan + 2048-bin counting
/// pass, interpolated within the hit bin. O(n) time, O(1) extra memory —
/// the streaming approximation the optimized engines use where the Pandas
/// model pays a copy + full sort. Error bounded by one bin width.
Result<double> QuantileApprox(const ArrayPtr& values, double q);

/// \brief Chunk-parallel streaming aggregate: partial moments per chunk
/// (via sim::ParallelFor), merged exactly. Used by the multithreaded and
/// streaming engines.
Result<Scalar> AggregateParallel(const ArrayPtr& values, AggKind kind,
                                 const sim::ParallelOptions& options = {});

/// \brief `describe()`: one row per numeric column with
/// count/mean/std/min/25%/50%/75%/max. `approx_quantiles` switches the
/// percentile rows to the streaming histogram estimate.
Result<TablePtr> Describe(const TablePtr& table, bool approx_quantiles = false);

/// \brief Column-parallel describe: per-column statistics computed as
/// independent tasks through sim::ParallelFor — the multithreading that
/// makes Modin the paper's fastest engine at `describe` on wide tables.
Result<TablePtr> DescribeParallel(const TablePtr& table, bool approx_quantiles,
                                  const sim::ParallelOptions& options = {});

}  // namespace bento::kern

#endif  // BENTO_KERNELS_STATS_H_
