#include "kernels/cast.h"

#include <cmath>

#include "columnar/builder.h"
#include "kernels/flat_index.h"
#include "util/string_util.h"

namespace bento::kern {

namespace {

Result<ArrayPtr> CastToString(const ArrayPtr& values) {
  col::StringBuilder out;
  out.Reserve(values->length());
  for (int64_t i = 0; i < values->length(); ++i) {
    if (!values->IsValid(i)) {
      out.AppendNull();
    } else {
      out.Append(values->ValueToString(i));
    }
  }
  return out.Finish();
}

Result<ArrayPtr> CastToCategorical(const ArrayPtr& values) {
  if (values->type() == TypeId::kCategorical) return values;
  if (values->type() != TypeId::kString) {
    return Status::TypeError("categorical cast requires a string column");
  }
  // Flat interner: probe on string_view against arena bytes — no per-value
  // std::string materialization, one copy per *distinct* value.
  StringInterner interner;
  col::CategoricalBuilder out;
  for (int64_t i = 0; i < values->length(); ++i) {
    if (!values->IsValid(i)) {
      out.AppendNull();
      continue;
    }
    out.Append(interner.FindOrInsert(values->GetView(i)));
  }
  auto dict = std::make_shared<std::vector<std::string>>(interner.ToStrings());
  return out.Finish(std::move(dict));
}

double NumericAt(const Array& a, int64_t i) {
  switch (a.type()) {
    case TypeId::kFloat64:
      return a.float64_data()[i];
    case TypeId::kBool:
      return a.bool_data()[i] != 0 ? 1.0 : 0.0;
    default:
      return static_cast<double>(a.int64_data()[i]);
  }
}

}  // namespace

Result<ArrayPtr> Cast(const ArrayPtr& values, TypeId target) {
  if (values->type() == target) return values;

  if (target == TypeId::kString) return CastToString(values);
  if (target == TypeId::kCategorical) return CastToCategorical(values);

  const TypeId source = values->type();

  // String source: strict parse into the numeric target.
  if (source == TypeId::kString) {
    switch (target) {
      case TypeId::kInt64: {
        col::Int64Builder out;
        out.Reserve(values->length());
        for (int64_t i = 0; i < values->length(); ++i) {
          if (!values->IsValid(i)) {
            out.AppendNull();
            continue;
          }
          BENTO_ASSIGN_OR_RETURN(int64_t v, ParseInt64(values->GetView(i)));
          out.Append(v);
        }
        return out.Finish();
      }
      case TypeId::kFloat64: {
        col::Float64Builder out;
        out.Reserve(values->length());
        for (int64_t i = 0; i < values->length(); ++i) {
          if (!values->IsValid(i)) {
            out.AppendNull();
            continue;
          }
          BENTO_ASSIGN_OR_RETURN(double v, ParseDouble(values->GetView(i)));
          out.Append(v);
        }
        return out.Finish();
      }
      case TypeId::kBool: {
        col::BoolBuilder out;
        out.Reserve(values->length());
        for (int64_t i = 0; i < values->length(); ++i) {
          if (!values->IsValid(i)) {
            out.AppendNull();
            continue;
          }
          BENTO_ASSIGN_OR_RETURN(bool v, ParseBool(values->GetView(i)));
          out.Append(v);
        }
        return out.Finish();
      }
      default:
        return Status::TypeError("cannot cast string to ",
                                 col::TypeName(target));
    }
  }

  if (source == TypeId::kCategorical) {
    BENTO_ASSIGN_OR_RETURN(auto as_string, CastToString(values));
    return Cast(as_string, target);
  }

  // Numeric-ish source to numeric-ish target.
  switch (target) {
    case TypeId::kInt64: {
      col::Int64Builder out;
      out.Reserve(values->length());
      for (int64_t i = 0; i < values->length(); ++i) {
        if (!values->IsValid(i)) {
          out.AppendNull();
          continue;
        }
        double v = NumericAt(*values, i);
        if (std::isnan(v)) {
          out.AppendNull();
        } else {
          out.Append(static_cast<int64_t>(v));
        }
      }
      return out.Finish();
    }
    case TypeId::kFloat64: {
      col::Float64Builder out;
      out.Reserve(values->length());
      for (int64_t i = 0; i < values->length(); ++i) {
        out.AppendMaybe(values->IsValid(i) ? NumericAt(*values, i) : 0.0,
                        values->IsValid(i));
      }
      return out.Finish();
    }
    case TypeId::kBool: {
      col::BoolBuilder out;
      out.Reserve(values->length());
      for (int64_t i = 0; i < values->length(); ++i) {
        out.AppendMaybe(NumericAt(*values, i) != 0.0, values->IsValid(i));
      }
      return out.Finish();
    }
    case TypeId::kTimestamp: {
      if (source != TypeId::kInt64) {
        return Status::TypeError(
            "timestamp cast requires int64 microseconds; use to_datetime for "
            "strings");
      }
      return Array::MakeFixed(TypeId::kTimestamp, values->length(),
                              values->data_buffer(), values->validity_buffer(),
                              values->cached_null_count());
    }
    default:
      return Status::TypeError("cannot cast ", col::TypeName(source), " to ",
                               col::TypeName(target));
  }
}

Result<ArrayPtr> ReplaceValues(const ArrayPtr& values, const Scalar& from,
                               const Scalar& to) {
  const int64_t n = values->length();
  auto matches = [&](int64_t i) -> bool {
    if (from.is_null()) return values->IsNull(i);
    if (values->IsNull(i)) return false;
    switch (values->type()) {
      case TypeId::kInt64:
      case TypeId::kTimestamp:
        return from.is_numeric() &&
               static_cast<double>(values->int64_data()[i]) ==
                   from.AsDouble().ValueOrDie();
      case TypeId::kFloat64:
        return from.is_numeric() &&
               values->float64_data()[i] == from.AsDouble().ValueOrDie();
      case TypeId::kBool:
        return from.kind() == Scalar::Kind::kBool &&
               (values->bool_data()[i] != 0) == from.bool_value();
      case TypeId::kString:
        return from.kind() == Scalar::Kind::kString &&
               values->GetView(i) == from.string_value();
      case TypeId::kCategorical:
        return from.kind() == Scalar::Kind::kString &&
               (*values->dictionary())[static_cast<size_t>(
                   values->codes_data()[i])] == from.string_value();
    }
    return false;
  };

  switch (values->type()) {
    case TypeId::kInt64: {
      col::Int64Builder out;
      out.Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        if (matches(i)) {
          if (to.is_null()) {
            out.AppendNull();
          } else {
            BENTO_ASSIGN_OR_RETURN(int64_t v, to.AsInt());
            out.Append(v);
          }
        } else {
          out.AppendMaybe(values->IsValid(i) ? values->int64_data()[i] : 0,
                          values->IsValid(i));
        }
      }
      return out.Finish();
    }
    case TypeId::kFloat64: {
      col::Float64Builder out;
      out.Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        if (matches(i)) {
          if (to.is_null()) {
            out.AppendNull();
          } else {
            BENTO_ASSIGN_OR_RETURN(double v, to.AsDouble());
            out.Append(v);
          }
        } else {
          out.AppendMaybe(values->IsValid(i) ? values->float64_data()[i] : 0.0,
                          values->IsValid(i));
        }
      }
      return out.Finish();
    }
    case TypeId::kBool: {
      col::BoolBuilder out;
      out.Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        if (matches(i)) {
          if (to.is_null() || to.kind() != Scalar::Kind::kBool) {
            out.AppendNull();
          } else {
            out.Append(to.bool_value());
          }
        } else {
          out.AppendMaybe(values->bool_data()[i] != 0, values->IsValid(i));
        }
      }
      return out.Finish();
    }
    case TypeId::kString:
    case TypeId::kCategorical: {
      col::StringBuilder out;
      out.Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        if (matches(i)) {
          if (to.is_null() || to.kind() != Scalar::Kind::kString) {
            out.AppendNull();
          } else {
            out.Append(to.string_value());
          }
        } else if (values->IsNull(i)) {
          out.AppendNull();
        } else if (values->type() == TypeId::kCategorical) {
          out.Append((*values->dictionary())[static_cast<size_t>(
              values->codes_data()[i])]);
        } else {
          out.Append(values->GetView(i));
        }
      }
      return out.Finish();
    }
    default:
      return Status::TypeError("replace unsupported for ",
                               col::TypeName(values->type()));
  }
}

}  // namespace bento::kern
