#ifndef BENTO_KERNELS_GROUPBY_H_
#define BENTO_KERNELS_GROUPBY_H_

#include <string>
#include <vector>

#include "kernels/common.h"
#include "sim/parallel.h"

namespace bento::kern {

/// \brief Accumulator for one (group, aggregation) pair. Tracks the moment
/// sums plus min/max/count so every AggKind can be finalized from one
/// struct; `rows` counts all rows routed to the group (kCount semantics
/// track non-null inputs through `count` instead).
///
/// Public so the morsel-parallel group-by's merge step and its property
/// tests can compose partial states directly.
struct AggState {
  double sum = 0.0;
  double sum_sq = 0.0;
  double min = 0.0;
  double max = 0.0;
  int64_t count = 0;  // non-null inputs seen
  int64_t rows = 0;   // all rows seen (for kCount)

  void Add(double v) {
    if (count == 0) {
      min = v;
      max = v;
    } else {
      if (v < min) min = v;
      if (v > max) max = v;
    }
    sum += v;
    sum_sq += v * v;
    ++count;
  }

  /// \brief Folds `other` into this state, where `other` accumulated rows
  /// that all come after this state's rows. min/max/count/rows compose
  /// exactly; sum and sum_sq compose by addition, which is bit-identical to
  /// serial accumulation whenever the operands are exactly representable
  /// (integer-valued inputs) and within 1 ulp per merge otherwise — the
  /// production group-by only merges states of disjoint key partitions
  /// (exactly one contributor per group), so its output never depends on
  /// this rounding.
  void Merge(const AggState& other) {
    if (other.count > 0) {
      if (count == 0) {
        min = other.min;
        max = other.max;
      } else {
        if (other.min < min) min = other.min;
        if (other.max > max) max = other.max;
      }
    }
    sum += other.sum;
    sum_sq += other.sum_sq;
    count += other.count;
    rows += other.rows;
  }

  /// \brief Finalized value for `kind`; sets *is_null for empty groups
  /// (kStd additionally needs count >= 2).
  double Result(AggKind kind, bool* is_null) const;
};

/// \brief Hash group-by: groups `table` on `keys` and computes `aggs`.
///
/// Output schema: the key columns (one representative row per group, in
/// first-seen order) followed by one column per AggSpec. kCount outputs
/// int64; other aggregations output float64 and ignore nulls (Pandas
/// semantics: a group whose inputs are all null aggregates to null).
Result<TablePtr> GroupBy(const TablePtr& table,
                         const std::vector<std::string>& keys,
                         const std::vector<AggSpec>& aggs);

/// \brief Morsel-driven parallel group-by: rows are radix-partitioned on
/// the top key-hash bits (disjoint keys per partition), every partition
/// aggregates into a thread-local FlatGrouper + flat AggState table over
/// sim::ParallelFor, and a single-threaded merge restores dense first-seen
/// group ids. No partition tables are materialized. Output is row-for-row
/// bit-identical to GroupBy for any worker count and in both execution
/// modes: per-group accumulation follows global row order and groups are
/// emitted in global first-seen order. The shape used by the multithreaded
/// engines (Modin/Polars/DataTable/Spark).
Result<TablePtr> GroupByPartitioned(const TablePtr& table,
                                    const std::vector<std::string>& keys,
                                    const std::vector<AggSpec>& aggs,
                                    const sim::ParallelOptions& options = {});

/// \brief Default output name for an aggregation ("<col>_<agg>").
std::string DefaultAggName(const AggSpec& spec);

}  // namespace bento::kern

#endif  // BENTO_KERNELS_GROUPBY_H_
