#ifndef BENTO_KERNELS_GROUPBY_H_
#define BENTO_KERNELS_GROUPBY_H_

#include <string>
#include <vector>

#include "kernels/common.h"
#include "sim/parallel.h"

namespace bento::kern {

/// \brief Hash group-by: groups `table` on `keys` and computes `aggs`.
///
/// Output schema: the key columns (one representative row per group, in
/// first-seen order) followed by one column per AggSpec. kCount outputs
/// int64; other aggregations output float64 and ignore nulls (Pandas
/// semantics: a group whose inputs are all null aggregates to null).
Result<TablePtr> GroupBy(const TablePtr& table,
                         const std::vector<std::string>& keys,
                         const std::vector<AggSpec>& aggs);

/// \brief Partition-parallel group-by: rows are hash-partitioned on the
/// keys, each partition groups independently (through sim::ParallelFor),
/// and the disjoint partial results are concatenated. The shape used by the
/// multithreaded engines (Modin/Polars/DataTable/Spark).
Result<TablePtr> GroupByPartitioned(const TablePtr& table,
                                    const std::vector<std::string>& keys,
                                    const std::vector<AggSpec>& aggs,
                                    const sim::ParallelOptions& options = {});

/// \brief Default output name for an aggregation ("<col>_<agg>").
std::string DefaultAggName(const AggSpec& spec);

}  // namespace bento::kern

#endif  // BENTO_KERNELS_GROUPBY_H_
