#include "kernels/selection.h"

#include "columnar/builder.h"

namespace bento::kern {

namespace {

using col::BoolBuilder;
using col::CategoricalBuilder;
using col::FixedBuilder;
using col::Float64Builder;
using col::Int64Builder;
using col::StringBuilder;

template <typename Builder, typename Getter>
Result<ArrayPtr> FilterFixed(const ArrayPtr& values, const ArrayPtr& mask,
                             Builder builder, Getter get) {
  const uint8_t* mdata = mask->bool_data();
  for (int64_t i = 0; i < values->length(); ++i) {
    if (mask->IsValid(i) && mdata[i] != 0) {
      if (values->IsValid(i)) {
        builder.Append(get(i));
      } else {
        builder.AppendNull();
      }
    }
  }
  return builder.Finish();
}

template <typename Builder, typename Getter>
Result<ArrayPtr> TakeFixed(const ArrayPtr& values,
                           const std::vector<int64_t>& indices,
                           Builder builder, Getter get) {
  for (int64_t idx : indices) {
    if (idx < 0 || values->IsNull(idx)) {
      builder.AppendNull();
    } else {
      builder.Append(get(idx));
    }
  }
  return builder.Finish();
}

Result<ArrayPtr> RetypeTimestamp(Result<ArrayPtr> r) {
  if (!r.ok()) return r;
  ArrayPtr a = r.MoveValueUnsafe();
  return Array::MakeFixed(TypeId::kTimestamp, a->length(), a->data_buffer(),
                          a->validity_buffer(), a->cached_null_count());
}

}  // namespace

Result<ArrayPtr> Filter(const ArrayPtr& values, const ArrayPtr& mask) {
  if (mask->type() != TypeId::kBool) {
    return Status::TypeError("filter mask must be bool, got ",
                             col::TypeName(mask->type()));
  }
  if (mask->length() != values->length()) {
    return Status::Invalid("mask length ", mask->length(),
                           " != values length ", values->length());
  }
  switch (values->type()) {
    case TypeId::kInt64:
      return FilterFixed(values, mask, Int64Builder(),
                         [&](int64_t i) { return values->int64_data()[i]; });
    case TypeId::kTimestamp:
      return RetypeTimestamp(
          FilterFixed(values, mask, Int64Builder(),
                      [&](int64_t i) { return values->int64_data()[i]; }));
    case TypeId::kFloat64:
      return FilterFixed(values, mask, Float64Builder(),
                         [&](int64_t i) { return values->float64_data()[i]; });
    case TypeId::kBool:
      return FilterFixed(values, mask, BoolBuilder(), [&](int64_t i) {
        return values->bool_data()[i] != 0;
      });
    case TypeId::kString: {
      StringBuilder builder;
      const uint8_t* mdata = mask->bool_data();
      for (int64_t i = 0; i < values->length(); ++i) {
        if (mask->IsValid(i) && mdata[i] != 0) {
          if (values->IsValid(i)) {
            builder.Append(values->GetView(i));
          } else {
            builder.AppendNull();
          }
        }
      }
      return builder.Finish();
    }
    case TypeId::kCategorical: {
      CategoricalBuilder builder;
      const uint8_t* mdata = mask->bool_data();
      for (int64_t i = 0; i < values->length(); ++i) {
        if (mask->IsValid(i) && mdata[i] != 0) {
          if (values->IsValid(i)) {
            builder.Append(values->codes_data()[i]);
          } else {
            builder.AppendNull();
          }
        }
      }
      return builder.Finish(values->dictionary());
    }
  }
  return Status::Invalid("unsupported type in Filter");
}

Result<TablePtr> FilterTable(const TablePtr& table, const ArrayPtr& mask) {
  std::vector<ArrayPtr> columns;
  columns.reserve(static_cast<size_t>(table->num_columns()));
  for (const ArrayPtr& c : table->columns()) {
    BENTO_ASSIGN_OR_RETURN(auto filtered, Filter(c, mask));
    columns.push_back(std::move(filtered));
  }
  if (columns.empty()) return table;
  return Table::Make(table->schema(), std::move(columns));
}

Result<ArrayPtr> Take(const ArrayPtr& values,
                      const std::vector<int64_t>& indices) {
  for (int64_t idx : indices) {
    if (idx >= values->length()) {
      return Status::IndexError("take index ", idx, " out of bounds (length ",
                                values->length(), ")");
    }
  }
  switch (values->type()) {
    case TypeId::kInt64:
      return TakeFixed(values, indices, Int64Builder(),
                       [&](int64_t i) { return values->int64_data()[i]; });
    case TypeId::kTimestamp:
      return RetypeTimestamp(
          TakeFixed(values, indices, Int64Builder(),
                    [&](int64_t i) { return values->int64_data()[i]; }));
    case TypeId::kFloat64:
      return TakeFixed(values, indices, Float64Builder(),
                       [&](int64_t i) { return values->float64_data()[i]; });
    case TypeId::kBool:
      return TakeFixed(values, indices, BoolBuilder(),
                       [&](int64_t i) { return values->bool_data()[i] != 0; });
    case TypeId::kString: {
      StringBuilder builder;
      for (int64_t idx : indices) {
        if (idx < 0 || values->IsNull(idx)) {
          builder.AppendNull();
        } else {
          builder.Append(values->GetView(idx));
        }
      }
      return builder.Finish();
    }
    case TypeId::kCategorical: {
      CategoricalBuilder builder;
      for (int64_t idx : indices) {
        if (idx < 0 || values->IsNull(idx)) {
          builder.AppendNull();
        } else {
          builder.Append(values->codes_data()[idx]);
        }
      }
      return builder.Finish(values->dictionary());
    }
  }
  return Status::Invalid("unsupported type in Take");
}

Result<TablePtr> TakeTable(const TablePtr& table,
                           const std::vector<int64_t>& indices) {
  std::vector<ArrayPtr> columns;
  columns.reserve(static_cast<size_t>(table->num_columns()));
  for (const ArrayPtr& c : table->columns()) {
    BENTO_ASSIGN_OR_RETURN(auto taken, Take(c, indices));
    columns.push_back(std::move(taken));
  }
  if (columns.empty()) return table;
  return Table::Make(table->schema(), std::move(columns));
}

}  // namespace bento::kern
