#include "kernels/selection.h"

#include <cstring>

#include "columnar/builder.h"
#include "obs/trace.h"
#include "simd/simd.h"

namespace bento::kern {

namespace {

using col::BoolBuilder;
using col::CategoricalBuilder;
using col::FixedBuilder;
using col::Float64Builder;
using col::Int64Builder;
using col::StringBuilder;

/// Sized gather of pre-materialized filter indices into a fixed-width
/// column: exact-size output buffer, no builder growth. Null slots keep the
/// zero-initialized payload — the same bytes the builder's AppendNull
/// staged, so results stay bit-identical to the old per-row builder loop.
template <typename T>
struct FilteredFixed {
  col::BufferPtr data;
  col::BufferPtr validity;  // nullptr when no output slot is null
  int64_t null_count = 0;
};

template <typename T>
Result<FilteredFixed<T>> FilterGatherFixed(const ArrayPtr& values,
                                           const T* src,
                                           const int64_t* idx,
                                           int64_t count) {
  FilteredFixed<T> out;
  BENTO_ASSIGN_OR_RETURN(
      out.data, col::Buffer::Allocate(static_cast<uint64_t>(count) * sizeof(T)));
  T* dst = out.data->template mutable_data_as<T>();
  const uint8_t* src_valid = values->validity_bits();
  if (src_valid == nullptr) {
    for (int64_t k = 0; k < count; ++k) dst[k] = src[idx[k]];
    return out;
  }
  BENTO_ASSIGN_OR_RETURN(auto validity, col::AllocateBitmap(count, false));
  uint8_t* vbits = validity->mutable_data();
  int64_t valid = 0;
  for (int64_t k = 0; k < count; ++k) {
    const int64_t i = idx[k];
    if (col::BitIsSet(src_valid, i)) {
      dst[k] = src[i];
      col::SetBit(vbits, k);
      ++valid;
    }
  }
  out.null_count = count - valid;
  if (out.null_count > 0) out.validity = std::move(validity);
  return out;
}

template <typename Builder, typename Getter>
Result<ArrayPtr> TakeFixed(const ArrayPtr& values,
                           const std::vector<int64_t>& indices,
                           Builder builder, Getter get) {
  for (int64_t idx : indices) {
    if (idx < 0 || values->IsNull(idx)) {
      builder.AppendNull();
    } else {
      builder.Append(get(idx));
    }
  }
  return builder.Finish();
}

Result<ArrayPtr> RetypeTimestamp(Result<ArrayPtr> r) {
  if (!r.ok()) return r;
  ArrayPtr a = r.MoveValueUnsafe();
  return Array::MakeFixed(TypeId::kTimestamp, a->length(), a->data_buffer(),
                          a->validity_buffer(), a->cached_null_count());
}

}  // namespace

Result<ArrayPtr> Filter(const ArrayPtr& values, const ArrayPtr& mask) {
  if (mask->type() != TypeId::kBool) {
    return Status::TypeError("filter mask must be bool, got ",
                             col::TypeName(mask->type()));
  }
  if (mask->length() != values->length()) {
    return Status::Invalid("mask length ", mask->length(),
                           " != values length ", values->length());
  }
  // Vectorized mask scan: materialize the selected row indices once, then
  // gather into exact-size output buffers.
  const int64_t n = values->length();
  std::vector<int64_t> idx(static_cast<size_t>(n));
  const int64_t count =
      simd::MaskToIndices(mask->bool_data(), mask->validity_bits(), n,
                          idx.data());
  switch (values->type()) {
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      BENTO_ASSIGN_OR_RETURN(
          auto g, FilterGatherFixed<int64_t>(values, values->int64_data(),
                                             idx.data(), count));
      return Array::MakeFixed(values->type(), count, std::move(g.data),
                              std::move(g.validity), g.null_count);
    }
    case TypeId::kFloat64: {
      BENTO_ASSIGN_OR_RETURN(
          auto g, FilterGatherFixed<double>(values, values->float64_data(),
                                            idx.data(), count));
      return Array::MakeFixed(TypeId::kFloat64, count, std::move(g.data),
                              std::move(g.validity), g.null_count);
    }
    case TypeId::kBool: {
      BENTO_ASSIGN_OR_RETURN(
          auto g, FilterGatherFixed<uint8_t>(values, values->bool_data(),
                                             idx.data(), count));
      return Array::MakeFixed(TypeId::kBool, count, std::move(g.data),
                              std::move(g.validity), g.null_count);
    }
    case TypeId::kString: {
      StringBuilder builder;
      builder.Reserve(count);
      for (int64_t k = 0; k < count; ++k) {
        const int64_t i = idx[static_cast<size_t>(k)];
        if (values->IsValid(i)) {
          builder.Append(values->GetView(i));
        } else {
          builder.AppendNull();
        }
      }
      return builder.Finish();
    }
    case TypeId::kCategorical: {
      BENTO_ASSIGN_OR_RETURN(
          auto g, FilterGatherFixed<int32_t>(values, values->codes_data(),
                                             idx.data(), count));
      return Array::MakeCategorical(count, std::move(g.data),
                                    values->dictionary(), std::move(g.validity),
                                    g.null_count);
    }
  }
  return Status::Invalid("unsupported type in Filter");
}

Result<TablePtr> FilterTable(const TablePtr& table, const ArrayPtr& mask) {
  std::vector<ArrayPtr> columns;
  columns.reserve(static_cast<size_t>(table->num_columns()));
  for (const ArrayPtr& c : table->columns()) {
    BENTO_ASSIGN_OR_RETURN(auto filtered, Filter(c, mask));
    columns.push_back(std::move(filtered));
  }
  if (columns.empty()) return table;
  return Table::Make(table->schema(), std::move(columns));
}

Result<ArrayPtr> Take(const ArrayPtr& values,
                      const std::vector<int64_t>& indices) {
  for (int64_t idx : indices) {
    if (idx >= values->length()) {
      return Status::IndexError("take index ", idx, " out of bounds (length ",
                                values->length(), ")");
    }
  }
  switch (values->type()) {
    case TypeId::kInt64:
      return TakeFixed(values, indices, Int64Builder(),
                       [&](int64_t i) { return values->int64_data()[i]; });
    case TypeId::kTimestamp:
      return RetypeTimestamp(
          TakeFixed(values, indices, Int64Builder(),
                    [&](int64_t i) { return values->int64_data()[i]; }));
    case TypeId::kFloat64:
      return TakeFixed(values, indices, Float64Builder(),
                       [&](int64_t i) { return values->float64_data()[i]; });
    case TypeId::kBool:
      return TakeFixed(values, indices, BoolBuilder(),
                       [&](int64_t i) { return values->bool_data()[i] != 0; });
    case TypeId::kString: {
      StringBuilder builder;
      for (int64_t idx : indices) {
        if (idx < 0 || values->IsNull(idx)) {
          builder.AppendNull();
        } else {
          builder.Append(values->GetView(idx));
        }
      }
      return builder.Finish();
    }
    case TypeId::kCategorical: {
      CategoricalBuilder builder;
      for (int64_t idx : indices) {
        if (idx < 0 || values->IsNull(idx)) {
          builder.AppendNull();
        } else {
          builder.Append(values->codes_data()[idx]);
        }
      }
      return builder.Finish(values->dictionary());
    }
  }
  return Status::Invalid("unsupported type in Take");
}

Result<TablePtr> TakeTable(const TablePtr& table,
                           const std::vector<int64_t>& indices) {
  std::vector<ArrayPtr> columns;
  columns.reserve(static_cast<size_t>(table->num_columns()));
  for (const ArrayPtr& c : table->columns()) {
    BENTO_ASSIGN_OR_RETURN(auto taken, Take(c, indices));
    columns.push_back(std::move(taken));
  }
  if (columns.empty()) return table;
  return Table::Make(table->schema(), std::move(columns));
}

// ---------------------------------------------------------------------------
// Sized parallel gather (TakeParallel / TakeTableParallel)
// ---------------------------------------------------------------------------

namespace {

/// Shared per-call state of a sized gather: the morsel decomposition plus
/// whether any index is negative (which forces a validity bitmap). Computed
/// once per table so the per-column passes skip the re-scan.
struct GatherPlan {
  std::vector<std::pair<int64_t, int64_t>> ranges;
  bool any_negative = false;
};

/// Morsel-parallel bounds scan. Reports the same first out-of-bounds index
/// (and message) the serial Take would: ranges are ordered, so the earliest
/// offending range's first hit is the global first.
Result<GatherPlan> PlanGather(const std::vector<int64_t>& indices,
                              int64_t source_length,
                              const sim::ParallelOptions& options) {
  GatherPlan plan;
  const int64_t n = static_cast<int64_t>(indices.size());
  plan.ranges = sim::MorselRanges(n, sim::ResolveWorkers(options));
  std::vector<int64_t> first_bad(plan.ranges.size(), -1);
  std::vector<uint8_t> has_negative(plan.ranges.size(), 0);
  BENTO_RETURN_NOT_OK(sim::ParallelFor(
      static_cast<int64_t>(plan.ranges.size()),
      [&](int64_t r) {
        auto [b, e] = plan.ranges[static_cast<size_t>(r)];
        bool negative = false;
        for (int64_t i = b; i < e; ++i) {
          const int64_t idx = indices[static_cast<size_t>(i)];
          negative |= idx < 0;
          if (idx >= source_length) {
            first_bad[static_cast<size_t>(r)] = i;
            break;
          }
        }
        has_negative[static_cast<size_t>(r)] = negative ? 1 : 0;
        return Status::OK();
      },
      options));
  for (size_t r = 0; r < plan.ranges.size(); ++r) {
    if (first_bad[r] >= 0) {
      return Status::IndexError("take index ",
                                indices[static_cast<size_t>(first_bad[r])],
                                " out of bounds (length ", source_length, ")");
    }
    plan.any_negative |= has_negative[r] != 0;
  }
  return plan;
}

/// Buffers of one gathered fixed-width column.
struct GatheredBuffers {
  col::BufferPtr data;
  col::BufferPtr validity;  // nullptr when no output slot is null
  int64_t null_count = 0;
};

/// Fixed-width gather: exact-size output buffer, one memwrite per row, no
/// builder growth. Null slots keep the zero-initialized value — the same
/// bytes the serial builder's AppendNull produces.
template <typename T>
Result<GatheredBuffers> GatherFixed(const ArrayPtr& values, const T* src,
                                    const std::vector<int64_t>& indices,
                                    const GatherPlan& plan,
                                    const sim::ParallelOptions& options) {
  const int64_t n = static_cast<int64_t>(indices.size());
  BENTO_ASSIGN_OR_RETURN(
      auto data, col::Buffer::Allocate(static_cast<uint64_t>(n) * sizeof(T)));
  T* dst = data->mutable_data_as<T>();

  const bool need_validity = plan.any_negative || values->MayHaveNulls();
  col::BufferPtr validity;
  uint8_t* vbits = nullptr;
  if (need_validity) {
    BENTO_ASSIGN_OR_RETURN(validity, col::AllocateBitmap(n, false));
    vbits = validity->mutable_data();
  }
  const uint8_t* src_valid = values->validity_bits();

  std::vector<int64_t> valid_counts(plan.ranges.size(), 0);
  BENTO_RETURN_NOT_OK(sim::ParallelFor(
      static_cast<int64_t>(plan.ranges.size()),
      [&](int64_t r) {
        auto [b, e] = plan.ranges[static_cast<size_t>(r)];
        if (vbits == nullptr) {
          for (int64_t i = b; i < e; ++i) {
            dst[i] = src[indices[static_cast<size_t>(i)]];
          }
          return Status::OK();
        }
        int64_t count = 0;
        for (int64_t i = b; i < e; ++i) {
          const int64_t idx = indices[static_cast<size_t>(i)];
          if (idx < 0 || (src_valid != nullptr && !col::BitIsSet(src_valid, idx))) {
            continue;  // zero-initialized data + cleared bit = null slot
          }
          dst[i] = src[idx];
          col::SetBit(vbits, i);
          ++count;
        }
        valid_counts[static_cast<size_t>(r)] = count;
        return Status::OK();
      },
      options));

  GatheredBuffers out;
  out.data = std::move(data);
  if (vbits != nullptr) {
    out.null_count = n;
    for (int64_t c : valid_counts) out.null_count -= c;
    if (out.null_count > 0) out.validity = std::move(validity);
  }
  return out;
}

Result<ArrayPtr> GatherString(const ArrayPtr& values,
                              const std::vector<int64_t>& indices,
                              const GatherPlan& plan,
                              const sim::ParallelOptions& options) {
  const int64_t n = static_cast<int64_t>(indices.size());
  const int64_t* src_off = values->offsets_data();
  const char* src_chars = values->chars_data();
  const uint8_t* src_valid = values->validity_bits();

  BENTO_ASSIGN_OR_RETURN(
      auto offsets,
      col::Buffer::Allocate(static_cast<uint64_t>(n + 1) * sizeof(int64_t)));
  int64_t* off = offsets->mutable_data_as<int64_t>();

  const bool need_validity = plan.any_negative || values->MayHaveNulls();
  col::BufferPtr validity;
  uint8_t* vbits = nullptr;
  if (need_validity) {
    BENTO_ASSIGN_OR_RETURN(validity, col::AllocateBitmap(n, false));
    vbits = validity->mutable_data();
  }

  // Pass 1: per-row byte lengths (staged in off[i+1]) + per-range totals.
  const size_t nranges = plan.ranges.size();
  std::vector<int64_t> range_bytes(nranges, 0);
  std::vector<int64_t> valid_counts(nranges, 0);
  BENTO_RETURN_NOT_OK(sim::ParallelFor(
      static_cast<int64_t>(nranges),
      [&](int64_t r) {
        auto [b, e] = plan.ranges[static_cast<size_t>(r)];
        int64_t bytes = 0;
        int64_t count = 0;
        for (int64_t i = b; i < e; ++i) {
          const int64_t idx = indices[static_cast<size_t>(i)];
          int64_t len = 0;
          if (idx >= 0 &&
              (src_valid == nullptr || col::BitIsSet(src_valid, idx))) {
            len = src_off[idx + 1] - src_off[idx];
            if (vbits != nullptr) col::SetBit(vbits, i);
            ++count;
          }
          off[i + 1] = len;
          bytes += len;
        }
        range_bytes[static_cast<size_t>(r)] = bytes;
        valid_counts[static_cast<size_t>(r)] = count;
        return Status::OK();
      },
      options));

  // Serial prefix over range totals -> per-range base offsets.
  std::vector<int64_t> range_base(nranges, 0);
  int64_t total_bytes = 0;
  for (size_t r = 0; r < nranges; ++r) {
    range_base[r] = total_bytes;
    total_bytes += range_bytes[r];
  }

  // Pass 2: staged lengths -> absolute offsets. Each range reads and writes
  // only its own off[b+1..e]; off[b] was finalized by the preceding range
  // (and off[0] is the buffer's zero initialization).
  BENTO_RETURN_NOT_OK(sim::ParallelFor(
      static_cast<int64_t>(nranges),
      [&](int64_t r) {
        auto [b, e] = plan.ranges[static_cast<size_t>(r)];
        int64_t running = range_base[static_cast<size_t>(r)];
        for (int64_t i = b; i < e; ++i) {
          running += off[i + 1];
          off[i + 1] = running;
        }
        return Status::OK();
      },
      options));

  BENTO_ASSIGN_OR_RETURN(auto chars,
                         col::Buffer::Allocate(static_cast<uint64_t>(total_bytes)));
  char* dst_chars = reinterpret_cast<char*>(chars->mutable_data());

  // Pass 3: byte copies into disjoint [off[i], off[i+1]) spans.
  BENTO_RETURN_NOT_OK(sim::ParallelFor(
      static_cast<int64_t>(nranges),
      [&](int64_t r) {
        auto [b, e] = plan.ranges[static_cast<size_t>(r)];
        for (int64_t i = b; i < e; ++i) {
          const int64_t len = off[i + 1] - off[i];
          if (len > 0) {
            const int64_t idx = indices[static_cast<size_t>(i)];
            std::memcpy(dst_chars + off[i], src_chars + src_off[idx],
                        static_cast<size_t>(len));
          }
        }
        return Status::OK();
      },
      options));

  int64_t null_count = 0;
  if (vbits != nullptr) {
    null_count = n;
    for (int64_t c : valid_counts) null_count -= c;
    if (null_count == 0) validity.reset();
  }
  return Array::MakeString(n, std::move(offsets), std::move(chars),
                           std::move(validity), null_count);
}

Result<ArrayPtr> TakeParallelImpl(const ArrayPtr& values,
                                  const std::vector<int64_t>& indices,
                                  const GatherPlan& plan,
                                  const sim::ParallelOptions& options) {
  const int64_t n = static_cast<int64_t>(indices.size());
  switch (values->type()) {
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      BENTO_ASSIGN_OR_RETURN(
          auto g, GatherFixed<int64_t>(values, values->int64_data(), indices,
                                       plan, options));
      return Array::MakeFixed(values->type(), n, std::move(g.data),
                              std::move(g.validity), g.null_count);
    }
    case TypeId::kFloat64: {
      BENTO_ASSIGN_OR_RETURN(
          auto g, GatherFixed<double>(values, values->float64_data(), indices,
                                      plan, options));
      return Array::MakeFixed(TypeId::kFloat64, n, std::move(g.data),
                              std::move(g.validity), g.null_count);
    }
    case TypeId::kBool: {
      BENTO_ASSIGN_OR_RETURN(
          auto g, GatherFixed<uint8_t>(values, values->bool_data(), indices,
                                       plan, options));
      return Array::MakeFixed(TypeId::kBool, n, std::move(g.data),
                              std::move(g.validity), g.null_count);
    }
    case TypeId::kString:
      return GatherString(values, indices, plan, options);
    case TypeId::kCategorical: {
      BENTO_ASSIGN_OR_RETURN(
          auto g, GatherFixed<int32_t>(values, values->codes_data(), indices,
                                       plan, options));
      return Array::MakeCategorical(n, std::move(g.data), values->dictionary(),
                                    std::move(g.validity), g.null_count);
    }
  }
  return Status::Invalid("unsupported type in TakeParallel");
}

/// Below this row count the sized-gather setup (morsel planning, bitmap
/// allocation, fan-out) costs more than the serial builder path saves.
constexpr int64_t kMinParallelTakeRows = 4096;

}  // namespace

Result<ArrayPtr> TakeParallel(const ArrayPtr& values,
                              const std::vector<int64_t>& indices,
                              const sim::ParallelOptions& options) {
  if (static_cast<int64_t>(indices.size()) < kMinParallelTakeRows) {
    return Take(values, indices);
  }
  BENTO_ASSIGN_OR_RETURN(auto plan,
                         PlanGather(indices, values->length(), options));
  return TakeParallelImpl(values, indices, plan, options);
}

Result<TablePtr> TakeTableParallel(const TablePtr& table,
                                   const std::vector<int64_t>& indices,
                                   const sim::ParallelOptions& options) {
  if (static_cast<int64_t>(indices.size()) < kMinParallelTakeRows) {
    return TakeTable(table, indices);
  }
  BENTO_TRACE_SPAN(kKernel, "take.parallel");
  BENTO_ASSIGN_OR_RETURN(auto plan,
                         PlanGather(indices, table->num_rows(), options));
  std::vector<ArrayPtr> columns;
  columns.reserve(static_cast<size_t>(table->num_columns()));
  for (const ArrayPtr& c : table->columns()) {
    BENTO_ASSIGN_OR_RETURN(auto taken,
                           TakeParallelImpl(c, indices, plan, options));
    columns.push_back(std::move(taken));
  }
  if (columns.empty()) return table;
  return Table::Make(table->schema(), std::move(columns));
}

}  // namespace bento::kern
