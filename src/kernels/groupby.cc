#include "kernels/groupby.h"

#include <cmath>

#include "columnar/builder.h"
#include "kernels/flat_index.h"
#include "kernels/row_hash.h"
#include "kernels/selection.h"

namespace bento::kern {

namespace {

/// Accumulator for one (group, aggregation) pair.
struct AggState {
  double sum = 0.0;
  double sum_sq = 0.0;
  double min = 0.0;
  double max = 0.0;
  int64_t count = 0;  // non-null inputs seen
  int64_t rows = 0;   // all rows seen (for kCount)

  void Add(double v) {
    if (count == 0) {
      min = v;
      max = v;
    } else {
      if (v < min) min = v;
      if (v > max) max = v;
    }
    sum += v;
    sum_sq += v * v;
    ++count;
  }

  double Result(AggKind kind, bool* is_null) const {
    *is_null = count == 0 && kind != AggKind::kCount;
    switch (kind) {
      case AggKind::kSum:
        return sum;
      case AggKind::kMean:
        return count > 0 ? sum / static_cast<double>(count) : 0.0;
      case AggKind::kMin:
        return min;
      case AggKind::kMax:
        return max;
      case AggKind::kCount:
        return static_cast<double>(count);
      case AggKind::kStd: {
        if (count < 2) {
          *is_null = true;
          return 0.0;
        }
        const double n = static_cast<double>(count);
        double var = (sum_sq - sum * sum / n) / (n - 1.0);
        return var > 0.0 ? std::sqrt(var) : 0.0;
      }
      case AggKind::kSumSq:
        return sum_sq;
    }
    return 0.0;
  }
};

double NumericCell(const Array& a, int64_t i) {
  switch (a.type()) {
    case TypeId::kFloat64:
      return a.float64_data()[i];
    case TypeId::kBool:
      return a.bool_data()[i] != 0 ? 1.0 : 0.0;
    default:
      return static_cast<double>(a.int64_data()[i]);
  }
}

}  // namespace

std::string DefaultAggName(const AggSpec& spec) {
  if (!spec.output_name.empty()) return spec.output_name;
  return spec.column + "_" + AggName(spec.kind);
}

const char* AggName(AggKind kind) {
  switch (kind) {
    case AggKind::kSum:
      return "sum";
    case AggKind::kMean:
      return "mean";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kCount:
      return "count";
    case AggKind::kStd:
      return "std";
    case AggKind::kSumSq:
      return "sumsq";
  }
  return "?";
}

Result<TablePtr> GroupBy(const TablePtr& table,
                         const std::vector<std::string>& keys,
                         const std::vector<AggSpec>& aggs) {
  BENTO_TRACE_SPAN(kKernel, "groupby");
  if (keys.empty()) return Status::Invalid("GroupBy requires at least one key");

  std::vector<ArrayPtr> agg_inputs;
  for (const AggSpec& spec : aggs) {
    BENTO_ASSIGN_OR_RETURN(auto c, table->GetColumn(spec.column));
    if (spec.kind != AggKind::kCount && !col::IsNumeric(c->type()) &&
        c->type() != TypeId::kBool && c->type() != TypeId::kTimestamp) {
      return Status::TypeError("cannot aggregate ", col::TypeName(c->type()),
                               " column '", spec.column, "' with ",
                               AggName(spec.kind));
    }
    agg_inputs.push_back(std::move(c));
  }

  BENTO_ASSIGN_OR_RETURN(auto hashes, HashRows(table, keys));
  BENTO_ASSIGN_OR_RETURN(auto equal, RowEquality::Make(table, keys, table, keys));

  // Flat open-addressing grouper: dense group ids in first-seen order,
  // full-hash ties resolved against each group's representative row.
  const int64_t n = table->num_rows();
  FlatGrouper grouper(n / 8 + 16);
  std::vector<std::vector<AggState>> states;  // [group][agg]

  for (int64_t i = 0; i < n; ++i) {
    const int64_t group = grouper.FindOrInsert(
        hashes[static_cast<size_t>(i)], i,
        [&](int64_t a, int64_t b) { return equal.Equal(a, b); });
    if (group == static_cast<int64_t>(states.size())) {
      states.emplace_back(aggs.size());
    }
    auto& row_states = states[static_cast<size_t>(group)];
    for (size_t a = 0; a < aggs.size(); ++a) {
      row_states[a].rows += 1;
      const Array& input = *agg_inputs[a];
      if (input.IsValid(i)) {
        const double v = NumericCell(input, i);
        // NaN counts as missing (sentinel-null model).
        if (!std::isnan(v)) row_states[a].Add(v);
      }
    }
  }

  // Assemble output: key columns via Take on representatives, then aggs.
  BENTO_ASSIGN_OR_RETURN(auto key_table, table->SelectColumns(keys));
  BENTO_ASSIGN_OR_RETURN(auto key_out,
                         TakeTable(key_table, grouper.representatives()));

  std::vector<col::Field> fields = key_out->schema()->fields();
  std::vector<ArrayPtr> columns = key_out->columns();
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].kind == AggKind::kCount) {
      col::Int64Builder b;
      b.Reserve(static_cast<int64_t>(states.size()));
      for (const auto& row_states : states) {
        b.Append(row_states[a].count);
      }
      BENTO_ASSIGN_OR_RETURN(auto arr, b.Finish());
      fields.push_back({DefaultAggName(aggs[a]), TypeId::kInt64});
      columns.push_back(std::move(arr));
    } else {
      col::Float64Builder b;
      b.Reserve(static_cast<int64_t>(states.size()));
      for (const auto& row_states : states) {
        bool is_null = false;
        double v = row_states[a].Result(aggs[a].kind, &is_null);
        b.AppendMaybe(v, !is_null);
      }
      BENTO_ASSIGN_OR_RETURN(auto arr, b.Finish());
      fields.push_back({DefaultAggName(aggs[a]), TypeId::kFloat64});
      columns.push_back(std::move(arr));
    }
  }
  return Table::Make(std::make_shared<col::Schema>(std::move(fields)),
                     std::move(columns));
}

Result<TablePtr> GroupByPartitioned(const TablePtr& table,
                                    const std::vector<std::string>& keys,
                                    const std::vector<AggSpec>& aggs,
                                    const sim::ParallelOptions& options) {
  BENTO_TRACE_SPAN(kKernel, "groupby.partitioned");
  int workers = options.max_workers;
  if (workers <= 0) {
    workers = sim::Session::Current() != nullptr
                  ? sim::Session::Current()->cores()
                  : 1;
  }
  if (workers <= 1 || table->num_rows() < 8192) {
    return GroupBy(table, keys, aggs);
  }

  // Hash-partition rows on the keys: equal keys land in one partition, so
  // per-partition group-bys are disjoint and concatenate without a merge.
  BENTO_ASSIGN_OR_RETURN(auto hashes, HashRowsParallel(table, keys, options));
  const size_t parts = static_cast<size_t>(workers);
  std::vector<std::vector<int64_t>> partition_rows(parts);
  for (int64_t i = 0; i < table->num_rows(); ++i) {
    partition_rows[hashes[static_cast<size_t>(i)] % parts].push_back(i);
  }

  std::vector<TablePtr> results(parts);
  BENTO_RETURN_NOT_OK(sim::ParallelFor(
      static_cast<int64_t>(parts),
      [&](int64_t p) -> Status {
        const auto& rows = partition_rows[static_cast<size_t>(p)];
        if (rows.empty()) return Status::OK();
        BENTO_ASSIGN_OR_RETURN(auto part, TakeTable(table, rows));
        BENTO_ASSIGN_OR_RETURN(auto grouped, GroupBy(part, keys, aggs));
        results[static_cast<size_t>(p)] = std::move(grouped);
        return Status::OK();
      },
      options));

  std::vector<TablePtr> non_empty;
  for (auto& r : results) {
    if (r != nullptr) non_empty.push_back(std::move(r));
  }
  if (non_empty.empty()) return GroupBy(table, keys, aggs);
  return col::ConcatTables(non_empty);
}

}  // namespace bento::kern
