#include "kernels/groupby.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "columnar/builder.h"
#include "kernels/flat_index.h"
#include "kernels/row_hash.h"
#include "kernels/selection.h"
#include "obs/metrics.h"

namespace bento::kern {

namespace {

double NumericCell(const Array& a, int64_t i) {
  switch (a.type()) {
    case TypeId::kFloat64:
      return a.float64_data()[i];
    case TypeId::kBool:
      return a.bool_data()[i] != 0 ? 1.0 : 0.0;
    default:
      return static_cast<double>(a.int64_data()[i]);
  }
}

/// Validates the agg specs and collects their input columns. Shared by the
/// serial and morsel-parallel paths so both reject bad specs with identical
/// errors.
Result<std::vector<ArrayPtr>> CollectAggInputs(const TablePtr& table,
                                               const std::vector<AggSpec>& aggs) {
  std::vector<ArrayPtr> agg_inputs;
  for (const AggSpec& spec : aggs) {
    BENTO_ASSIGN_OR_RETURN(auto c, table->GetColumn(spec.column));
    if (spec.kind != AggKind::kCount && !col::IsNumeric(c->type()) &&
        c->type() != TypeId::kBool && c->type() != TypeId::kTimestamp) {
      return Status::TypeError("cannot aggregate ", col::TypeName(c->type()),
                               " column '", spec.column, "' with ",
                               AggName(spec.kind));
    }
    agg_inputs.push_back(std::move(c));
  }
  return agg_inputs;
}

/// Feeds row `i` into its group's AggState block, replicating the serial
/// GroupBy update exactly: `rows` counts every routed row, non-null non-NaN
/// cells feed the moment sums (sentinel-null model).
inline void AccumulateRow(const std::vector<ArrayPtr>& agg_inputs,
                          AggState* row_states, int64_t i) {
  const size_t naggs = agg_inputs.size();
  for (size_t a = 0; a < naggs; ++a) {
    row_states[a].rows += 1;
    const Array& input = *agg_inputs[a];
    if (input.IsValid(i)) {
      const double v = NumericCell(input, i);
      // NaN counts as missing (sentinel-null model).
      if (!std::isnan(v)) row_states[a].Add(v);
    }
  }
}

}  // namespace

double AggState::Result(AggKind kind, bool* is_null) const {
  *is_null = count == 0 && kind != AggKind::kCount;
  switch (kind) {
    case AggKind::kSum:
      return sum;
    case AggKind::kMean:
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    case AggKind::kMin:
      return min;
    case AggKind::kMax:
      return max;
    case AggKind::kCount:
      return static_cast<double>(count);
    case AggKind::kStd: {
      if (count < 2) {
        *is_null = true;
        return 0.0;
      }
      const double n = static_cast<double>(count);
      double var = (sum_sq - sum * sum / n) / (n - 1.0);
      return var > 0.0 ? std::sqrt(var) : 0.0;
    }
    case AggKind::kSumSq:
      return sum_sq;
  }
  return 0.0;
}

std::string DefaultAggName(const AggSpec& spec) {
  if (!spec.output_name.empty()) return spec.output_name;
  return spec.column + "_" + AggName(spec.kind);
}

const char* AggName(AggKind kind) {
  switch (kind) {
    case AggKind::kSum:
      return "sum";
    case AggKind::kMean:
      return "mean";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kCount:
      return "count";
    case AggKind::kStd:
      return "std";
    case AggKind::kSumSq:
      return "sumsq";
  }
  return "?";
}

Result<TablePtr> GroupBy(const TablePtr& table,
                         const std::vector<std::string>& keys,
                         const std::vector<AggSpec>& aggs) {
  BENTO_TRACE_SPAN(kKernel, "groupby");
  if (keys.empty()) return Status::Invalid("GroupBy requires at least one key");

  BENTO_ASSIGN_OR_RETURN(auto agg_inputs, CollectAggInputs(table, aggs));

  BENTO_ASSIGN_OR_RETURN(auto hashes, HashRows(table, keys));
  BENTO_ASSIGN_OR_RETURN(auto equal, RowEquality::Make(table, keys, table, keys));

  // Flat open-addressing grouper: dense group ids in first-seen order,
  // full-hash ties resolved against each group's representative row.
  const int64_t n = table->num_rows();
  FlatGrouper grouper(n / 8 + 16);
  std::vector<std::vector<AggState>> states;  // [group][agg]

  for (int64_t i = 0; i < n; ++i) {
    const int64_t group = grouper.FindOrInsert(
        hashes[static_cast<size_t>(i)], i,
        [&](int64_t a, int64_t b) { return equal.Equal(a, b); });
    if (group == static_cast<int64_t>(states.size())) {
      states.emplace_back(aggs.size());
    }
    AccumulateRow(agg_inputs, states[static_cast<size_t>(group)].data(), i);
  }

  // Assemble output: key columns via Take on representatives, then aggs.
  BENTO_ASSIGN_OR_RETURN(auto key_table, table->SelectColumns(keys));
  BENTO_ASSIGN_OR_RETURN(auto key_out,
                         TakeTable(key_table, grouper.representatives()));

  std::vector<col::Field> fields = key_out->schema()->fields();
  std::vector<ArrayPtr> columns = key_out->columns();
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].kind == AggKind::kCount) {
      col::Int64Builder b;
      b.Reserve(static_cast<int64_t>(states.size()));
      for (const auto& row_states : states) {
        b.Append(row_states[a].count);
      }
      BENTO_ASSIGN_OR_RETURN(auto arr, b.Finish());
      fields.push_back({DefaultAggName(aggs[a]), TypeId::kInt64});
      columns.push_back(std::move(arr));
    } else {
      col::Float64Builder b;
      b.Reserve(static_cast<int64_t>(states.size()));
      for (const auto& row_states : states) {
        bool is_null = false;
        double v = row_states[a].Result(aggs[a].kind, &is_null);
        b.AppendMaybe(v, !is_null);
      }
      BENTO_ASSIGN_OR_RETURN(auto arr, b.Finish());
      fields.push_back({DefaultAggName(aggs[a]), TypeId::kFloat64});
      columns.push_back(std::move(arr));
    }
  }
  return Table::Make(std::make_shared<col::Schema>(std::move(fields)),
                     std::move(columns));
}

Result<TablePtr> GroupByPartitioned(const TablePtr& table,
                                    const std::vector<std::string>& keys,
                                    const std::vector<AggSpec>& aggs,
                                    const sim::ParallelOptions& options) {
  BENTO_TRACE_SPAN(kKernel, "groupby.partitioned");
  if (keys.empty()) return Status::Invalid("GroupBy requires at least one key");
  const int64_t n = table->num_rows();
  const int workers = sim::ResolveWorkers(options);
  if (workers <= 1 || n < 8192) return GroupBy(table, keys, aggs);

  BENTO_ASSIGN_OR_RETURN(auto agg_inputs, CollectAggInputs(table, aggs));
  const size_t naggs = aggs.size();

  BENTO_ASSIGN_OR_RETURN(auto hashes, HashRowsParallel(table, keys, options));
  BENTO_ASSIGN_OR_RETURN(auto equal, RowEquality::Make(table, keys, table, keys));

  // Radix fan-out on the TOP hash bits — the low bits address hash-table
  // slots, so reusing them for partitioning correlates partition id with
  // slot id and skews partitions on structured keys. Top-bit partitioning
  // also guarantees each key lands in exactly one partition, which is what
  // makes the per-partition states disjoint and the merge exact.
  const int parts = FlatIndex::PlanPartitions(n, options);
  int part_bits = 0;
  while ((1 << part_bits) < parts) ++part_bits;
  const int shift = 64 - part_bits;

  // Partition row lists, built morsel-parallel: each morsel scatters its own
  // row range into private buckets, and partition p reads bucket column p
  // across morsels in morsel order — i.e. ascending global row order, which
  // keeps per-group accumulation order identical to serial.
  std::vector<std::pair<int64_t, int64_t>> morsels;
  std::vector<std::vector<int64_t>> buckets;  // [morsel * parts + partition]
  if (parts > 1) {
    morsels = sim::MorselRanges(n, workers);
    buckets.assign(morsels.size() * static_cast<size_t>(parts), {});
    BENTO_RETURN_NOT_OK(sim::ParallelFor(
        static_cast<int64_t>(morsels.size()),
        [&](int64_t m) -> Status {
          const auto [b, e] = morsels[static_cast<size_t>(m)];
          std::vector<int64_t>* local =
              &buckets[static_cast<size_t>(m) * static_cast<size_t>(parts)];
          for (int p = 0; p < parts; ++p) {
            local[p].reserve(static_cast<size_t>((e - b) / parts + 8));
          }
          for (int64_t i = b; i < e; ++i) {
            local[hashes[static_cast<size_t>(i)] >> shift].push_back(i);
          }
          return Status::OK();
        },
        options));
  }

  // Per-partition aggregation into a thread-local FlatGrouper plus one flat
  // AggState block per group — no partition tables are materialized and no
  // rows are re-hashed (the seed's TakeTable + recursive GroupBy per
  // partition did ~4.6x the serial work).
  struct PartStates {
    std::unique_ptr<FlatGrouper> grouper;
    std::vector<AggState> states;  // [group * naggs + agg]
  };
  std::vector<PartStates> part_out(static_cast<size_t>(parts));
  BENTO_RETURN_NOT_OK(sim::ParallelFor(
      parts,
      [&](int64_t p) -> Status {
        BENTO_TRACE_SPAN(kKernel, "groupby.morsel.partition");
        // Start the grouper small enough to stay cache-resident and let it
        // grow toward n/(8*parts): low-cardinality keys (the common case)
        // then probe an L1/L2-sized table instead of a sparse n/8-slot one,
        // and growth rehashes cost O(final size) amortized.
        auto grouper = std::make_unique<FlatGrouper>(
            std::min<int64_t>(n / (8 * parts) + 16, 1 << 14));
        std::vector<AggState> states;
        auto consume = [&](int64_t i) {
          const int64_t group = grouper->FindOrInsert(
              hashes[static_cast<size_t>(i)], i,
              [&](int64_t a, int64_t b) { return equal.Equal(a, b); });
          if (static_cast<size_t>(group) * naggs == states.size()) {
            states.resize(states.size() + naggs);
          }
          AccumulateRow(agg_inputs, &states[static_cast<size_t>(group) * naggs],
                        i);
        };
        if (parts == 1) {
          for (int64_t i = 0; i < n; ++i) consume(i);
        } else {
          for (size_t m = 0; m < morsels.size(); ++m) {
            for (int64_t i :
                 buckets[m * static_cast<size_t>(parts) + static_cast<size_t>(p)]) {
              consume(i);
            }
          }
        }
        part_out[static_cast<size_t>(p)] = {std::move(grouper),
                                            std::move(states)};
        return Status::OK();
      },
      options));

  // Merge: partitions hold disjoint key sets, so global first-seen group
  // order is exactly ascending representative-row order. Each merged group
  // has a single contributing partition state; AggState::Merge composes it
  // into the zero state, so the finalized values are bit-identical to the
  // serial accumulation (which visited the same rows in the same order).
  struct GroupRef {
    int64_t rep;
    int32_t part;
    int64_t local;
  };
  int64_t num_groups = 0;
  for (const auto& po : part_out) {
    if (po.grouper != nullptr) num_groups += po.grouper->num_groups();
  }
  std::vector<GroupRef> refs;
  refs.reserve(static_cast<size_t>(num_groups));
  for (int p = 0; p < parts; ++p) {
    const auto& reps = part_out[static_cast<size_t>(p)].grouper->representatives();
    for (size_t g = 0; g < reps.size(); ++g) {
      refs.push_back({reps[g], p, static_cast<int64_t>(g)});
    }
  }
  std::sort(refs.begin(), refs.end(),
            [](const GroupRef& x, const GroupRef& y) { return x.rep < y.rep; });

  static obs::Counter* c_parts =
      obs::MetricsRegistry::Global().counter("groupby.morsel.partitions");
  static obs::Counter* c_groups =
      obs::MetricsRegistry::Global().counter("groupby.morsel.groups");
  c_parts->Add(static_cast<uint64_t>(parts));
  c_groups->Add(static_cast<uint64_t>(num_groups));

  std::vector<int64_t> rep_rows(refs.size());
  for (size_t i = 0; i < refs.size(); ++i) rep_rows[i] = refs[i].rep;
  BENTO_ASSIGN_OR_RETURN(auto key_table, table->SelectColumns(keys));
  BENTO_ASSIGN_OR_RETURN(auto key_out,
                         TakeTableParallel(key_table, rep_rows, options));

  std::vector<col::Field> fields = key_out->schema()->fields();
  std::vector<ArrayPtr> columns = key_out->columns();
  for (size_t a = 0; a < naggs; ++a) {
    if (aggs[a].kind == AggKind::kCount) {
      col::Int64Builder b;
      b.Reserve(static_cast<int64_t>(refs.size()));
      for (const GroupRef& ref : refs) {
        AggState merged;
        merged.Merge(part_out[static_cast<size_t>(ref.part)]
                         .states[static_cast<size_t>(ref.local) * naggs + a]);
        b.Append(merged.count);
      }
      BENTO_ASSIGN_OR_RETURN(auto arr, b.Finish());
      fields.push_back({DefaultAggName(aggs[a]), TypeId::kInt64});
      columns.push_back(std::move(arr));
    } else {
      col::Float64Builder b;
      b.Reserve(static_cast<int64_t>(refs.size()));
      for (const GroupRef& ref : refs) {
        AggState merged;
        merged.Merge(part_out[static_cast<size_t>(ref.part)]
                         .states[static_cast<size_t>(ref.local) * naggs + a]);
        bool is_null = false;
        double v = merged.Result(aggs[a].kind, &is_null);
        b.AppendMaybe(v, !is_null);
      }
      BENTO_ASSIGN_OR_RETURN(auto arr, b.Finish());
      fields.push_back({DefaultAggName(aggs[a]), TypeId::kFloat64});
      columns.push_back(std::move(arr));
    }
  }
  return Table::Make(std::make_shared<col::Schema>(std::move(fields)),
                     std::move(columns));
}

}  // namespace bento::kern
