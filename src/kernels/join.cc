#include "kernels/join.h"

#include <unordered_map>

#include "kernels/row_hash.h"
#include "kernels/selection.h"

namespace bento::kern {

namespace {

Result<TablePtr> AssembleJoin(const TablePtr& left, const TablePtr& right,
                              const std::string& right_key,
                              const std::vector<int64_t>& left_rows,
                              const std::vector<int64_t>& right_rows,
                              const std::string& right_suffix) {
  BENTO_ASSIGN_OR_RETURN(auto left_out, TakeTable(left, left_rows));
  BENTO_ASSIGN_OR_RETURN(auto right_sel, right->DropColumns({right_key}));
  BENTO_ASSIGN_OR_RETURN(auto right_out, TakeTable(right_sel, right_rows));

  std::vector<col::Field> fields = left_out->schema()->fields();
  std::vector<ArrayPtr> columns = left_out->columns();
  for (int c = 0; c < right_out->num_columns(); ++c) {
    col::Field f = right_out->schema()->field(c);
    if (left_out->schema()->Contains(f.name)) f.name += right_suffix;
    fields.push_back(std::move(f));
    columns.push_back(right_out->column(c));
  }
  return Table::Make(std::make_shared<col::Schema>(std::move(fields)),
                     std::move(columns));
}

}  // namespace

Result<TablePtr> HashJoin(const TablePtr& left, const TablePtr& right,
                          const std::string& left_key,
                          const std::string& right_key,
                          const JoinOptions& options) {
  BENTO_ASSIGN_OR_RETURN(auto right_hashes, HashRows(right, {right_key}));
  BENTO_ASSIGN_OR_RETURN(auto left_hashes, HashRows(left, {left_key}));
  BENTO_ASSIGN_OR_RETURN(
      auto equal, RowEquality::Make(left, {left_key}, right, {right_key}));
  BENTO_ASSIGN_OR_RETURN(auto right_key_col, right->GetColumn(right_key));
  BENTO_ASSIGN_OR_RETURN(auto left_key_col, left->GetColumn(left_key));

  std::unordered_map<uint64_t, std::vector<int64_t>> index;
  index.reserve(static_cast<size_t>(right->num_rows()));
  for (int64_t j = 0; j < right->num_rows(); ++j) {
    if (right_key_col->IsNull(j)) continue;  // null keys never match
    index[right_hashes[static_cast<size_t>(j)]].push_back(j);
  }

  std::vector<int64_t> left_rows;
  std::vector<int64_t> right_rows;
  for (int64_t i = 0; i < left->num_rows(); ++i) {
    bool matched = false;
    if (!left_key_col->IsNull(i)) {
      auto it = index.find(left_hashes[static_cast<size_t>(i)]);
      if (it != index.end()) {
        for (int64_t j : it->second) {
          if (equal.Equal(i, j)) {
            left_rows.push_back(i);
            right_rows.push_back(j);
            matched = true;
          }
        }
      }
    }
    if (!matched && options.type == JoinType::kLeft) {
      left_rows.push_back(i);
      right_rows.push_back(-1);
    }
  }
  return AssembleJoin(left, right, right_key, left_rows, right_rows,
                      options.right_suffix);
}

Result<TablePtr> HashJoinParallel(const TablePtr& left, const TablePtr& right,
                                  const std::string& left_key,
                                  const std::string& right_key,
                                  const JoinOptions& options,
                                  const sim::ParallelOptions& parallel) {
  int workers = parallel.max_workers;
  if (workers <= 0) {
    workers = sim::Session::Current() != nullptr
                  ? sim::Session::Current()->cores()
                  : 1;
  }
  auto ranges = sim::SplitRange(left->num_rows(), workers, 8192);
  if (ranges.size() <= 1) {
    return HashJoin(left, right, left_key, right_key, options);
  }

  // Shared build phase (serial), parallel probe over left chunks.
  BENTO_ASSIGN_OR_RETURN(auto right_hashes, HashRows(right, {right_key}));
  BENTO_ASSIGN_OR_RETURN(auto left_hashes, HashRows(left, {left_key}));
  BENTO_ASSIGN_OR_RETURN(
      auto equal, RowEquality::Make(left, {left_key}, right, {right_key}));
  BENTO_ASSIGN_OR_RETURN(auto right_key_col, right->GetColumn(right_key));
  BENTO_ASSIGN_OR_RETURN(auto left_key_col, left->GetColumn(left_key));

  std::unordered_map<uint64_t, std::vector<int64_t>> index;
  index.reserve(static_cast<size_t>(right->num_rows()));
  for (int64_t j = 0; j < right->num_rows(); ++j) {
    if (right_key_col->IsNull(j)) continue;
    index[right_hashes[static_cast<size_t>(j)]].push_back(j);
  }

  std::vector<std::vector<int64_t>> chunk_left(ranges.size());
  std::vector<std::vector<int64_t>> chunk_right(ranges.size());
  BENTO_RETURN_NOT_OK(sim::ParallelFor(
      static_cast<int64_t>(ranges.size()),
      [&](int64_t r) {
        auto [b, e] = ranges[static_cast<size_t>(r)];
        auto& lrows = chunk_left[static_cast<size_t>(r)];
        auto& rrows = chunk_right[static_cast<size_t>(r)];
        for (int64_t i = b; i < e; ++i) {
          bool matched = false;
          if (!left_key_col->IsNull(i)) {
            auto it = index.find(left_hashes[static_cast<size_t>(i)]);
            if (it != index.end()) {
              for (int64_t j : it->second) {
                if (equal.Equal(i, j)) {
                  lrows.push_back(i);
                  rrows.push_back(j);
                  matched = true;
                }
              }
            }
          }
          if (!matched && options.type == JoinType::kLeft) {
            lrows.push_back(i);
            rrows.push_back(-1);
          }
        }
        return Status::OK();
      },
      parallel));

  std::vector<int64_t> left_rows;
  std::vector<int64_t> right_rows;
  for (size_t r = 0; r < ranges.size(); ++r) {
    left_rows.insert(left_rows.end(), chunk_left[r].begin(), chunk_left[r].end());
    right_rows.insert(right_rows.end(), chunk_right[r].begin(),
                      chunk_right[r].end());
  }
  return AssembleJoin(left, right, right_key, left_rows, right_rows,
                      options.right_suffix);
}

}  // namespace bento::kern
