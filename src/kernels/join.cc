#include "kernels/join.h"

#include <algorithm>

#include "kernels/flat_index.h"
#include "kernels/row_hash.h"
#include "kernels/selection.h"
#include "obs/metrics.h"

namespace bento::kern {

namespace {

Result<TablePtr> SpliceJoinColumns(const TablePtr& left_out,
                                   const TablePtr& right_out,
                                   const std::string& right_suffix) {
  std::vector<col::Field> fields = left_out->schema()->fields();
  std::vector<ArrayPtr> columns = left_out->columns();
  for (int c = 0; c < right_out->num_columns(); ++c) {
    col::Field f = right_out->schema()->field(c);
    if (left_out->schema()->Contains(f.name)) f.name += right_suffix;
    fields.push_back(std::move(f));
    columns.push_back(right_out->column(c));
  }
  return Table::Make(std::make_shared<col::Schema>(std::move(fields)),
                     std::move(columns));
}

Result<TablePtr> AssembleJoin(const TablePtr& left, const TablePtr& right,
                              const std::string& right_key,
                              const std::vector<int64_t>& left_rows,
                              const std::vector<int64_t>& right_rows,
                              const std::string& right_suffix) {
  BENTO_ASSIGN_OR_RETURN(auto left_out, TakeTable(left, left_rows));
  BENTO_ASSIGN_OR_RETURN(auto right_sel, right->DropColumns({right_key}));
  BENTO_ASSIGN_OR_RETURN(auto right_out, TakeTable(right_sel, right_rows));
  return SpliceJoinColumns(left_out, right_out, right_suffix);
}

/// Parallel twin of AssembleJoin: the gathers run as sized-output morsel
/// copies (TakeTableParallel), so the result materializes without builder
/// growth and without serializing on one thread.
Result<TablePtr> AssembleJoinParallel(const TablePtr& left,
                                      const TablePtr& right,
                                      const std::string& right_key,
                                      const std::vector<int64_t>& left_rows,
                                      const std::vector<int64_t>& right_rows,
                                      const std::string& right_suffix,
                                      const sim::ParallelOptions& parallel) {
  BENTO_ASSIGN_OR_RETURN(auto left_out,
                         TakeTableParallel(left, left_rows, parallel));
  BENTO_ASSIGN_OR_RETURN(auto right_sel, right->DropColumns({right_key}));
  BENTO_ASSIGN_OR_RETURN(auto right_out,
                         TakeTableParallel(right_sel, right_rows, parallel));
  return SpliceJoinColumns(left_out, right_out, right_suffix);
}

/// Probes rows [begin, end) of the left table against the build index and
/// appends match pairs (first-seen order: left row major, right chain minor).
void ProbeRange(const FlatIndex& index, const std::vector<uint64_t>& left_hashes,
                const Array& left_key_col, const RowEquality& equal,
                JoinType type, int64_t begin, int64_t end,
                std::vector<int64_t>* left_rows,
                std::vector<int64_t>* right_rows) {
  for (int64_t i = begin; i < end; ++i) {
    bool matched = false;
    if (!left_key_col.IsNull(i)) {
      int64_t j = index.Find(left_hashes[static_cast<size_t>(i)],
                             [&](int64_t row) { return equal.Equal(i, row); });
      for (; j != FlatIndex::kNone; j = index.Next(j)) {
        left_rows->push_back(i);
        right_rows->push_back(j);
        matched = true;
      }
    }
    if (!matched && type == JoinType::kLeft) {
      left_rows->push_back(i);
      right_rows->push_back(-1);
    }
  }
}

}  // namespace

Result<TablePtr> HashJoin(const TablePtr& left, const TablePtr& right,
                          const std::string& left_key,
                          const std::string& right_key,
                          const JoinOptions& options) {
  BENTO_TRACE_SPAN(kKernel, "join.hash");
  BENTO_ASSIGN_OR_RETURN(auto right_hashes, HashRows(right, {right_key}));
  BENTO_ASSIGN_OR_RETURN(auto left_hashes, HashRows(left, {left_key}));
  BENTO_ASSIGN_OR_RETURN(
      auto equal, RowEquality::Make(left, {left_key}, right, {right_key}));
  BENTO_ASSIGN_OR_RETURN(
      auto build_equal, RowEquality::Make(right, {right_key}, right, {right_key}));
  BENTO_ASSIGN_OR_RETURN(auto right_key_col, right->GetColumn(right_key));
  BENTO_ASSIGN_OR_RETURN(auto left_key_col, left->GetColumn(left_key));

  FlatIndex index;
  index.Build(
      right_hashes,
      [&](int64_t j) { return !right_key_col->IsNull(j); },  // nulls never match
      [&](int64_t a, int64_t b) { return build_equal.Equal(a, b); });

  std::vector<int64_t> left_rows;
  std::vector<int64_t> right_rows;
  ProbeRange(index, left_hashes, *left_key_col, equal, options.type, 0,
             left->num_rows(), &left_rows, &right_rows);
  return AssembleJoin(left, right, right_key, left_rows, right_rows,
                      options.right_suffix);
}

Result<TablePtr> HashJoinParallel(const TablePtr& left, const TablePtr& right,
                                  const std::string& left_key,
                                  const std::string& right_key,
                                  const JoinOptions& options,
                                  const sim::ParallelOptions& parallel) {
  BENTO_TRACE_SPAN(kKernel, "join.hash_parallel");
  const int workers = sim::ResolveWorkers(parallel);
  // Morsel-sized probe chunks: task count follows the data, not n/workers,
  // so the pool can steal across skewed match densities.
  auto ranges = sim::MorselRanges(left->num_rows(), workers);
  if ((workers <= 1 || ranges.size() <= 1) &&
      FlatIndex::PlanPartitions(right->num_rows(), parallel) <= 1) {
    return HashJoin(left, right, left_key, right_key, options);
  }

  // Parallel hash + radix-partitioned parallel build, parallel probe over
  // left chunks. Output order is identical to the serial path: probes emit
  // per-chunk in left-row order and chunks concatenate in range order.
  BENTO_ASSIGN_OR_RETURN(auto right_hashes,
                         HashRowsParallel(right, {right_key}, parallel));
  BENTO_ASSIGN_OR_RETURN(auto left_hashes,
                         HashRowsParallel(left, {left_key}, parallel));
  BENTO_ASSIGN_OR_RETURN(
      auto equal, RowEquality::Make(left, {left_key}, right, {right_key}));
  BENTO_ASSIGN_OR_RETURN(
      auto build_equal, RowEquality::Make(right, {right_key}, right, {right_key}));
  BENTO_ASSIGN_OR_RETURN(auto right_key_col, right->GetColumn(right_key));
  BENTO_ASSIGN_OR_RETURN(auto left_key_col, left->GetColumn(left_key));

  FlatIndex index;
  BENTO_RETURN_NOT_OK(index.BuildPartitioned(
      right_hashes, [&](int64_t j) { return !right_key_col->IsNull(j); },
      [&](int64_t a, int64_t b) { return build_equal.Equal(a, b); }, parallel));

  std::vector<std::vector<int64_t>> chunk_left(ranges.size());
  std::vector<std::vector<int64_t>> chunk_right(ranges.size());
  BENTO_RETURN_NOT_OK(sim::ParallelFor(
      static_cast<int64_t>(ranges.size()),
      [&](int64_t r) {
        auto [b, e] = ranges[static_cast<size_t>(r)];
        // ~1 match per probe row is the common shape; over-reserve slightly
        // so the emit loop rarely reallocates.
        chunk_left[static_cast<size_t>(r)].reserve(static_cast<size_t>(e - b));
        chunk_right[static_cast<size_t>(r)].reserve(static_cast<size_t>(e - b));
        ProbeRange(index, left_hashes, *left_key_col, equal, options.type, b, e,
                   &chunk_left[static_cast<size_t>(r)],
                   &chunk_right[static_cast<size_t>(r)]);
        return Status::OK();
      },
      parallel));

  // Prefix-sum the per-chunk match counts, then copy every chunk into its
  // disjoint slice of the exact-size pair vectors in parallel. Chunk order =
  // left-row order, so the output ordering matches the serial probe.
  std::vector<size_t> offsets(ranges.size() + 1, 0);
  for (size_t r = 0; r < ranges.size(); ++r) {
    offsets[r + 1] = offsets[r] + chunk_left[r].size();
  }
  std::vector<int64_t> left_rows(offsets.back());
  std::vector<int64_t> right_rows(offsets.back());
  BENTO_RETURN_NOT_OK(sim::ParallelFor(
      static_cast<int64_t>(ranges.size()),
      [&](int64_t r) {
        const auto& cl = chunk_left[static_cast<size_t>(r)];
        const auto& cr = chunk_right[static_cast<size_t>(r)];
        std::copy(cl.begin(), cl.end(),
                  left_rows.begin() + static_cast<int64_t>(offsets[static_cast<size_t>(r)]));
        std::copy(cr.begin(), cr.end(),
                  right_rows.begin() + static_cast<int64_t>(offsets[static_cast<size_t>(r)]));
        return Status::OK();
      },
      parallel));
  static obs::Counter* c_pairs =
      obs::MetricsRegistry::Global().counter("join.probe.pairs");
  c_pairs->Add(static_cast<uint64_t>(offsets.back()));
  return AssembleJoinParallel(left, right, right_key, left_rows, right_rows,
                              options.right_suffix, parallel);
}

}  // namespace bento::kern
