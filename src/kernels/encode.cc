#include "kernels/encode.h"

#include <cstring>

#include "columnar/builder.h"
#include "kernels/cast.h"
#include "kernels/flat_index.h"

namespace bento::kern {

namespace {

Status CheckEncodable(const Array& a, const char* what) {
  if (a.type() != TypeId::kString && a.type() != TypeId::kCategorical) {
    return Status::TypeError(what, " requires string or categorical input");
  }
  return Status::OK();
}

/// View of a (pre-validated) string or categorical cell; no copies.
inline std::string_view CellView(const Array& a, int64_t i) {
  if (a.type() == TypeId::kCategorical) {
    return (*a.dictionary())[static_cast<size_t>(a.codes_data()[i])];
  }
  return a.GetView(i);
}

/// Category index of every row (-1 = null or unseen category), resolved
/// once per row. Categorical columns resolve through a per-dictionary-code
/// lookup table instead of hashing row values.
std::vector<int32_t> ResolveHits(const Array& values,
                                 const StringInterner& categories) {
  const int64_t n = values.length();
  std::vector<int32_t> hits(static_cast<size_t>(n), -1);
  if (values.type() == TypeId::kCategorical) {
    const auto& dict = *values.dictionary();
    std::vector<int32_t> code_to_hit(dict.size());
    for (size_t c = 0; c < dict.size(); ++c) {
      code_to_hit[c] = categories.Find(dict[c]);
    }
    const int32_t* codes = values.codes_data();
    for (int64_t i = 0; i < n; ++i) {
      if (values.IsValid(i)) {
        hits[static_cast<size_t>(i)] =
            code_to_hit[static_cast<size_t>(codes[i])];
      }
    }
  } else {
    for (int64_t i = 0; i < n; ++i) {
      if (values.IsValid(i)) {
        hits[static_cast<size_t>(i)] = categories.Find(values.GetView(i));
      }
    }
  }
  return hits;
}

}  // namespace

Result<TablePtr> GetDummies(const TablePtr& table, const std::string& column,
                            int max_categories) {
  BENTO_ASSIGN_OR_RETURN(auto values, table->GetColumn(column));
  BENTO_RETURN_NOT_OK(CheckEncodable(*values, "get_dummies"));

  // Pass 1: category discovery (first-seen order), interned without
  // materializing per-row std::strings.
  StringInterner interner;
  for (int64_t i = 0; i < values->length(); ++i) {
    if (values->IsNull(i)) continue;
    const int64_t before = interner.size();
    interner.FindOrInsert(CellView(*values, i));
    if (interner.size() != before && max_categories > 0 &&
        interner.size() >= max_categories) {
      break;
    }
  }
  return GetDummiesWithCategories(table, column, interner.ToStrings());
}

Result<TablePtr> GetDummiesWithCategories(
    const TablePtr& table, const std::string& column,
    const std::vector<std::string>& categories) {
  BENTO_ASSIGN_OR_RETURN(auto values, table->GetColumn(column));
  BENTO_RETURN_NOT_OK(CheckEncodable(*values, "get_dummies"));
  StringInterner lookup(static_cast<int64_t>(categories.size()));
  for (const std::string& c : categories) lookup.FindOrInsert(c);

  // Pass 2: one hit index per row, then column-major indicator fill —
  // zero-initialized buffers up front (bulk), a single store for each hit.
  const int64_t n = values->length();
  std::vector<int32_t> hits = ResolveHits(*values, lookup);

  std::vector<col::BufferPtr> indicator(categories.size());
  std::vector<int64_t*> data(categories.size());
  for (size_t k = 0; k < categories.size(); ++k) {
    BENTO_ASSIGN_OR_RETURN(
        indicator[k],
        col::Buffer::Allocate(static_cast<uint64_t>(n) * sizeof(int64_t)));
    data[k] = indicator[k]->mutable_data_as<int64_t>();
  }
  for (int64_t i = 0; i < n; ++i) {
    const int32_t hit = hits[static_cast<size_t>(i)];
    if (hit >= 0) data[static_cast<size_t>(hit)][i] = 1;
  }

  BENTO_ASSIGN_OR_RETURN(auto base, table->DropColumns({column}));
  std::vector<col::Field> fields = base->schema()->fields();
  std::vector<ArrayPtr> columns = base->columns();
  for (size_t k = 0; k < categories.size(); ++k) {
    BENTO_ASSIGN_OR_RETURN(
        auto arr, Array::MakeFixed(TypeId::kInt64, n, std::move(indicator[k]),
                                   nullptr, 0));
    fields.push_back({column + "_" + categories[k], TypeId::kInt64});
    columns.push_back(std::move(arr));
  }
  return Table::Make(std::make_shared<col::Schema>(std::move(fields)),
                     std::move(columns));
}

Result<ArrayPtr> CatCodes(const ArrayPtr& values) {
  ArrayPtr dict_encoded = values;
  if (values->type() == TypeId::kString) {
    BENTO_ASSIGN_OR_RETURN(dict_encoded, DictEncode(values));
  } else if (values->type() != TypeId::kCategorical) {
    return Status::TypeError("cat.codes requires string or categorical input");
  }
  col::Int64Builder out;
  out.Reserve(dict_encoded->length());
  for (int64_t i = 0; i < dict_encoded->length(); ++i) {
    out.AppendMaybe(
        dict_encoded->IsValid(i) ? dict_encoded->codes_data()[i] : 0,
        dict_encoded->IsValid(i));
  }
  return out.Finish();
}

Result<ArrayPtr> DictEncode(const ArrayPtr& values) {
  return Cast(values, TypeId::kCategorical);
}

Result<ArrayPtr> CatCodesWithDict(const ArrayPtr& values,
                                  const std::vector<std::string>& dict) {
  BENTO_RETURN_NOT_OK(CheckEncodable(*values, "cat.codes"));
  StringInterner lookup(static_cast<int64_t>(dict.size()));
  for (const std::string& d : dict) lookup.FindOrInsert(d);
  col::Int64Builder out;
  out.Reserve(values->length());
  for (int64_t i = 0; i < values->length(); ++i) {
    if (values->IsNull(i)) {
      out.AppendNull();
      continue;
    }
    const int32_t id = lookup.Find(CellView(*values, i));
    if (id == StringInterner::kNone) {
      out.AppendNull();  // unseen under a fixed dictionary
    } else {
      out.Append(id);
    }
  }
  return out.Finish();
}

}  // namespace bento::kern
