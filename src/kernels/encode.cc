#include "kernels/encode.h"

#include <unordered_map>

#include "columnar/builder.h"
#include "kernels/cast.h"

namespace bento::kern {

namespace {

Result<std::string> CellString(const Array& a, int64_t i) {
  if (a.type() == TypeId::kString) return std::string(a.GetView(i));
  if (a.type() == TypeId::kCategorical) {
    return (*a.dictionary())[static_cast<size_t>(a.codes_data()[i])];
  }
  return Status::TypeError("encoding requires string or categorical input");
}

}  // namespace

Result<TablePtr> GetDummies(const TablePtr& table, const std::string& column,
                            int max_categories) {
  BENTO_ASSIGN_OR_RETURN(auto values, table->GetColumn(column));
  if (values->type() != TypeId::kString &&
      values->type() != TypeId::kCategorical) {
    return Status::TypeError("get_dummies requires string or categorical");
  }

  // Pass 1: category discovery (first-seen order).
  std::vector<std::string> categories;
  std::unordered_map<std::string, int> lookup;
  for (int64_t i = 0; i < values->length(); ++i) {
    if (values->IsNull(i)) continue;
    BENTO_ASSIGN_OR_RETURN(std::string v, CellString(*values, i));
    if (lookup.emplace(v, static_cast<int>(categories.size())).second) {
      categories.push_back(std::move(v));
      if (max_categories > 0 &&
          static_cast<int>(categories.size()) >= max_categories) {
        break;
      }
    }
  }
  return GetDummiesWithCategories(table, column, categories);
}

Result<TablePtr> GetDummiesWithCategories(
    const TablePtr& table, const std::string& column,
    const std::vector<std::string>& categories) {
  BENTO_ASSIGN_OR_RETURN(auto values, table->GetColumn(column));
  if (values->type() != TypeId::kString &&
      values->type() != TypeId::kCategorical) {
    return Status::TypeError("get_dummies requires string or categorical");
  }
  std::unordered_map<std::string, int> lookup;
  for (size_t k = 0; k < categories.size(); ++k) {
    lookup.emplace(categories[k], static_cast<int>(k));
  }

  // Pass 2: indicator columns.
  std::vector<col::Int64Builder> builders(categories.size());
  for (auto& b : builders) b.Reserve(values->length());
  for (int64_t i = 0; i < values->length(); ++i) {
    int hit = -1;
    if (!values->IsNull(i)) {
      BENTO_ASSIGN_OR_RETURN(std::string v, CellString(*values, i));
      auto it = lookup.find(v);
      if (it != lookup.end()) hit = it->second;
    }
    for (size_t k = 0; k < builders.size(); ++k) {
      builders[k].Append(static_cast<int>(k) == hit ? 1 : 0);
    }
  }

  BENTO_ASSIGN_OR_RETURN(auto base, table->DropColumns({column}));
  std::vector<col::Field> fields = base->schema()->fields();
  std::vector<ArrayPtr> columns = base->columns();
  for (size_t k = 0; k < categories.size(); ++k) {
    BENTO_ASSIGN_OR_RETURN(auto arr, builders[k].Finish());
    fields.push_back({column + "_" + categories[k], TypeId::kInt64});
    columns.push_back(std::move(arr));
  }
  return Table::Make(std::make_shared<col::Schema>(std::move(fields)),
                     std::move(columns));
}

Result<ArrayPtr> CatCodes(const ArrayPtr& values) {
  ArrayPtr dict_encoded = values;
  if (values->type() == TypeId::kString) {
    BENTO_ASSIGN_OR_RETURN(dict_encoded, DictEncode(values));
  } else if (values->type() != TypeId::kCategorical) {
    return Status::TypeError("cat.codes requires string or categorical input");
  }
  col::Int64Builder out;
  out.Reserve(dict_encoded->length());
  for (int64_t i = 0; i < dict_encoded->length(); ++i) {
    out.AppendMaybe(
        dict_encoded->IsValid(i) ? dict_encoded->codes_data()[i] : 0,
        dict_encoded->IsValid(i));
  }
  return out.Finish();
}

Result<ArrayPtr> DictEncode(const ArrayPtr& values) {
  return Cast(values, TypeId::kCategorical);
}

Result<ArrayPtr> CatCodesWithDict(const ArrayPtr& values,
                                  const std::vector<std::string>& dict) {
  if (values->type() != TypeId::kString &&
      values->type() != TypeId::kCategorical) {
    return Status::TypeError("cat.codes requires string or categorical input");
  }
  std::unordered_map<std::string, int64_t> lookup;
  for (size_t k = 0; k < dict.size(); ++k) {
    lookup.emplace(dict[k], static_cast<int64_t>(k));
  }
  col::Int64Builder out;
  out.Reserve(values->length());
  for (int64_t i = 0; i < values->length(); ++i) {
    if (values->IsNull(i)) {
      out.AppendNull();
      continue;
    }
    BENTO_ASSIGN_OR_RETURN(std::string v, CellString(*values, i));
    auto it = lookup.find(v);
    if (it == lookup.end()) {
      out.AppendNull();  // unseen under a fixed dictionary
    } else {
      out.Append(it->second);
    }
  }
  return out.Finish();
}

}  // namespace bento::kern
