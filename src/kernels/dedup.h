#ifndef BENTO_KERNELS_DEDUP_H_
#define BENTO_KERNELS_DEDUP_H_

#include <string>
#include <vector>

#include "kernels/common.h"

namespace bento::kern {

/// \brief `drop_duplicates`: keeps the first occurrence of each distinct row
/// over `subset` columns (all columns when empty). Order-preserving.
Result<TablePtr> DropDuplicates(const TablePtr& table,
                                const std::vector<std::string>& subset = {});

/// \brief Distinct non-null values of one column, in first-seen order
/// (`unique()`; used by one-hot encoding and EDA).
Result<ArrayPtr> Unique(const ArrayPtr& values);

}  // namespace bento::kern

#endif  // BENTO_KERNELS_DEDUP_H_
