#ifndef BENTO_KERNELS_DEDUP_H_
#define BENTO_KERNELS_DEDUP_H_

#include <string>
#include <vector>

#include "kernels/common.h"
#include "sim/parallel.h"

namespace bento::kern {

/// \brief `drop_duplicates`: keeps the first occurrence of each distinct row
/// over `subset` columns (all columns when empty). Order-preserving.
Result<TablePtr> DropDuplicates(const TablePtr& table,
                                const std::vector<std::string>& subset = {});

/// \brief Morsel-parallel DropDuplicates: rows radix-partition on the top
/// key-hash bits, each partition records its first sightings in a private
/// FlatGrouper (scanning in global row order), and the ascending per-
/// partition keep lists merge back into one ascending list — identical
/// rows-kept and order to the serial kernel for any worker count. The
/// surviving rows materialize through the sized parallel gather.
Result<TablePtr> DropDuplicatesParallel(
    const TablePtr& table, const std::vector<std::string>& subset = {},
    const sim::ParallelOptions& options = {});

/// \brief Distinct non-null values of one column, in first-seen order
/// (`unique()`; used by one-hot encoding and EDA).
Result<ArrayPtr> Unique(const ArrayPtr& values);

/// \brief Parallel Unique with the same partition-scan shape as
/// DropDuplicatesParallel; output is identical to Unique.
Result<ArrayPtr> UniqueParallel(const ArrayPtr& values,
                                const sim::ParallelOptions& options = {});

}  // namespace bento::kern

#endif  // BENTO_KERNELS_DEDUP_H_
