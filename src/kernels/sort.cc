#include "kernels/sort.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "kernels/selection.h"
#include "obs/trace.h"

namespace bento::kern {

namespace {

/// Three-way comparison of one cell pair under a key; nulls last.
int CompareCell(const Array& a, int64_t i, int64_t j, bool ascending) {
  const bool in = a.IsNull(i);
  const bool jn = a.IsNull(j);
  if (in || jn) {
    if (in && jn) return 0;
    return in ? 1 : -1;  // nulls last, independent of direction
  }
  int cmp = 0;
  switch (a.type()) {
    case TypeId::kBool: {
      int l = a.bool_data()[i] != 0;
      int r = a.bool_data()[j] != 0;
      cmp = l < r ? -1 : (l > r ? 1 : 0);
      break;
    }
    case TypeId::kString: {
      std::string_view l = a.GetView(i);
      std::string_view r = a.GetView(j);
      cmp = l < r ? -1 : (l > r ? 1 : 0);
      break;
    }
    case TypeId::kCategorical: {
      const auto& dict = *a.dictionary();
      const std::string& l = dict[static_cast<size_t>(a.codes_data()[i])];
      const std::string& r = dict[static_cast<size_t>(a.codes_data()[j])];
      cmp = l < r ? -1 : (l > r ? 1 : 0);
      break;
    }
    case TypeId::kFloat64: {
      double l = a.float64_data()[i];
      double r = a.float64_data()[j];
      const bool lnan = std::isnan(l);
      const bool rnan = std::isnan(r);
      if (lnan || rnan) {
        if (lnan && rnan) return 0;
        return lnan ? 1 : -1;  // NaN last like nulls
      }
      cmp = l < r ? -1 : (l > r ? 1 : 0);
      break;
    }
    default: {
      int64_t l = a.int64_data()[i];
      int64_t r = a.int64_data()[j];
      cmp = l < r ? -1 : (l > r ? 1 : 0);
      break;
    }
  }
  return ascending ? cmp : -cmp;
}

struct Comparator {
  const std::vector<ArrayPtr>* columns;
  const std::vector<SortKey>* keys;

  bool operator()(int64_t i, int64_t j) const {
    for (size_t k = 0; k < keys->size(); ++k) {
      int cmp = CompareCell(*(*columns)[k], i, j, (*keys)[k].ascending);
      if (cmp != 0) return cmp < 0;
    }
    return false;
  }
};

Result<std::vector<ArrayPtr>> ResolveKeyColumns(
    const TablePtr& table, const std::vector<SortKey>& keys) {
  std::vector<ArrayPtr> columns;
  for (const SortKey& key : keys) {
    BENTO_ASSIGN_OR_RETURN(auto c, table->GetColumn(key.column));
    columns.push_back(std::move(c));
  }
  return columns;
}

}  // namespace

Result<std::vector<int64_t>> ArgSort(const TablePtr& table,
                                     const std::vector<SortKey>& keys) {
  BENTO_TRACE_SPAN(kKernel, "sort.argsort");
  if (keys.empty()) return Status::Invalid("ArgSort requires at least one key");
  BENTO_ASSIGN_OR_RETURN(auto columns, ResolveKeyColumns(table, keys));
  std::vector<int64_t> indices(static_cast<size_t>(table->num_rows()));
  for (size_t i = 0; i < indices.size(); ++i) {
    indices[i] = static_cast<int64_t>(i);
  }
  Comparator cmp{&columns, &keys};
  std::stable_sort(indices.begin(), indices.end(), cmp);
  return indices;
}

Result<std::vector<int64_t>> ArgSortParallel(
    const TablePtr& table, const std::vector<SortKey>& keys,
    const sim::ParallelOptions& options) {
  BENTO_TRACE_SPAN(kKernel, "sort.argsort_parallel");
  if (keys.empty()) return Status::Invalid("ArgSort requires at least one key");
  BENTO_ASSIGN_OR_RETURN(auto columns, ResolveKeyColumns(table, keys));
  const int64_t n = table->num_rows();

  int workers = options.max_workers;
  if (workers <= 0) {
    workers = sim::Session::Current() != nullptr
                  ? sim::Session::Current()->cores()
                  : 1;
  }
  auto ranges = sim::SplitRange(n, workers, /*min_rows_per_chunk=*/4096);
  if (ranges.size() <= 1) return ArgSort(table, keys);

  Comparator cmp{&columns, &keys};
  std::vector<std::vector<int64_t>> runs(ranges.size());
  BENTO_RETURN_NOT_OK(sim::ParallelFor(
      static_cast<int64_t>(ranges.size()),
      [&](int64_t r) {
        auto [b, e] = ranges[static_cast<size_t>(r)];
        auto& run = runs[static_cast<size_t>(r)];
        run.resize(static_cast<size_t>(e - b));
        for (int64_t i = b; i < e; ++i) run[static_cast<size_t>(i - b)] = i;
        std::stable_sort(run.begin(), run.end(), cmp);
        return Status::OK();
      },
      options));

  // Serial k-way merge of the sorted runs. Stability across runs follows
  // from run order being row order and the heap tie-breaking on run id.
  struct HeapItem {
    int64_t row;
    size_t run;
    size_t pos;
  };
  auto heap_cmp = [&](const HeapItem& a, const HeapItem& b) {
    if (cmp(b.row, a.row)) return true;
    if (cmp(a.row, b.row)) return false;
    return a.run > b.run;
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(heap_cmp)> heap(
      heap_cmp);
  for (size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r].empty()) heap.push({runs[r][0], r, 0});
  }
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(n));
  while (!heap.empty()) {
    HeapItem top = heap.top();
    heap.pop();
    out.push_back(top.row);
    size_t next = top.pos + 1;
    if (next < runs[top.run].size()) {
      heap.push({runs[top.run][next], top.run, next});
    }
  }
  return out;
}

Result<TablePtr> SortTable(const TablePtr& table,
                           const std::vector<SortKey>& keys) {
  BENTO_ASSIGN_OR_RETURN(auto indices, ArgSort(table, keys));
  return TakeTable(table, indices);
}

namespace {

/// Cross-table cell comparison; mirrors CompareCell but over two arrays.
int CompareCellsAcross(const Array& l, int64_t i, const Array& r, int64_t j,
                       bool ascending) {
  const bool ln = l.IsNull(i);
  const bool rn = r.IsNull(j);
  if (ln || rn) {
    if (ln && rn) return 0;
    return ln ? 1 : -1;
  }
  int cmp = 0;
  switch (l.type()) {
    case TypeId::kBool: {
      int a = l.bool_data()[i] != 0;
      int b = r.bool_data()[j] != 0;
      cmp = a < b ? -1 : (a > b ? 1 : 0);
      break;
    }
    case TypeId::kString: {
      std::string_view a = l.GetView(i);
      std::string_view b = r.GetView(j);
      cmp = a < b ? -1 : (a > b ? 1 : 0);
      break;
    }
    case TypeId::kCategorical: {
      const std::string& a =
          (*l.dictionary())[static_cast<size_t>(l.codes_data()[i])];
      const std::string& b =
          (*r.dictionary())[static_cast<size_t>(r.codes_data()[j])];
      cmp = a < b ? -1 : (a > b ? 1 : 0);
      break;
    }
    case TypeId::kFloat64: {
      double a = l.float64_data()[i];
      double b = r.float64_data()[j];
      const bool anan = std::isnan(a);
      const bool bnan = std::isnan(b);
      if (anan || bnan) {
        if (anan && bnan) return 0;
        return anan ? 1 : -1;
      }
      cmp = a < b ? -1 : (a > b ? 1 : 0);
      break;
    }
    default: {
      int64_t a = l.int64_data()[i];
      int64_t b = r.int64_data()[j];
      cmp = a < b ? -1 : (a > b ? 1 : 0);
      break;
    }
  }
  return ascending ? cmp : -cmp;
}

}  // namespace

Result<int> CompareTableRows(const TablePtr& a, int64_t i, const TablePtr& b,
                             int64_t j, const std::vector<SortKey>& keys) {
  for (const SortKey& key : keys) {
    BENTO_ASSIGN_OR_RETURN(auto ca, a->GetColumn(key.column));
    BENTO_ASSIGN_OR_RETURN(auto cb, b->GetColumn(key.column));
    if (ca->type() != cb->type()) {
      return Status::TypeError("sort key type mismatch across runs");
    }
    int cmp = CompareCellsAcross(*ca, i, *cb, j, key.ascending);
    if (cmp != 0) return cmp;
  }
  return 0;
}

}  // namespace bento::kern
