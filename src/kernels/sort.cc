#include "kernels/sort.h"

#include <algorithm>
#include <cmath>

#include "kernels/selection.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/thread_pool.h"

namespace bento::kern {

namespace {

/// One resolved sort key column. Categorical keys precompute a
/// code -> lexicographic-rank table once per dictionary (an argsort of the
/// dictionary entries), so row comparisons become two int loads instead of
/// string compares. Ranks order identically to the entry strings, and
/// dictionary entries are unique (interner-built), so equal rank means
/// equal string — results are bit-identical to comparing decoded strings.
struct KeyColumn {
  ArrayPtr array;
  std::vector<int32_t> ranks;  // per dictionary code; empty unless categorical
};

std::vector<int32_t> DictionaryRanks(const std::vector<std::string>& dict) {
  std::vector<int32_t> order(dict.size());
  for (size_t k = 0; k < dict.size(); ++k) order[k] = static_cast<int32_t>(k);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return dict[static_cast<size_t>(a)] < dict[static_cast<size_t>(b)];
  });
  std::vector<int32_t> ranks(dict.size());
  for (size_t r = 0; r < order.size(); ++r) {
    ranks[static_cast<size_t>(order[r])] = static_cast<int32_t>(r);
  }
  return ranks;
}

/// Three-way comparison of one cell pair under a key; nulls last.
int CompareCell(const KeyColumn& key, int64_t i, int64_t j, bool ascending) {
  const Array& a = *key.array;
  const bool in = a.IsNull(i);
  const bool jn = a.IsNull(j);
  if (in || jn) {
    if (in && jn) return 0;
    return in ? 1 : -1;  // nulls last, independent of direction
  }
  int cmp = 0;
  switch (a.type()) {
    case TypeId::kBool: {
      int l = a.bool_data()[i] != 0;
      int r = a.bool_data()[j] != 0;
      cmp = l < r ? -1 : (l > r ? 1 : 0);
      break;
    }
    case TypeId::kString: {
      std::string_view l = a.GetView(i);
      std::string_view r = a.GetView(j);
      cmp = l < r ? -1 : (l > r ? 1 : 0);
      break;
    }
    case TypeId::kCategorical: {
      const int32_t l = key.ranks[static_cast<size_t>(a.codes_data()[i])];
      const int32_t r = key.ranks[static_cast<size_t>(a.codes_data()[j])];
      cmp = l < r ? -1 : (l > r ? 1 : 0);
      break;
    }
    case TypeId::kFloat64: {
      double l = a.float64_data()[i];
      double r = a.float64_data()[j];
      const bool lnan = std::isnan(l);
      const bool rnan = std::isnan(r);
      if (lnan || rnan) {
        if (lnan && rnan) return 0;
        return lnan ? 1 : -1;  // NaN last like nulls
      }
      cmp = l < r ? -1 : (l > r ? 1 : 0);
      break;
    }
    default: {
      int64_t l = a.int64_data()[i];
      int64_t r = a.int64_data()[j];
      cmp = l < r ? -1 : (l > r ? 1 : 0);
      break;
    }
  }
  return ascending ? cmp : -cmp;
}

struct Comparator {
  const std::vector<KeyColumn>* columns;
  const std::vector<SortKey>* keys;

  bool operator()(int64_t i, int64_t j) const {
    for (size_t k = 0; k < keys->size(); ++k) {
      int cmp = CompareCell((*columns)[k], i, j, (*keys)[k].ascending);
      if (cmp != 0) return cmp < 0;
    }
    return false;
  }
};

Result<std::vector<KeyColumn>> ResolveKeyColumns(
    const TablePtr& table, const std::vector<SortKey>& keys) {
  std::vector<KeyColumn> columns;
  for (const SortKey& key : keys) {
    BENTO_ASSIGN_OR_RETURN(auto c, table->GetColumn(key.column));
    KeyColumn kc;
    if (c->type() == TypeId::kCategorical) {
      kc.ranks = DictionaryRanks(*c->dictionary());
    }
    kc.array = std::move(c);
    columns.push_back(std::move(kc));
  }
  return columns;
}

}  // namespace

Result<std::vector<int64_t>> ArgSort(const TablePtr& table,
                                     const std::vector<SortKey>& keys) {
  BENTO_TRACE_SPAN(kKernel, "sort.argsort");
  if (keys.empty()) return Status::Invalid("ArgSort requires at least one key");
  BENTO_ASSIGN_OR_RETURN(auto columns, ResolveKeyColumns(table, keys));
  std::vector<int64_t> indices(static_cast<size_t>(table->num_rows()));
  for (size_t i = 0; i < indices.size(); ++i) {
    indices[i] = static_cast<int64_t>(i);
  }
  Comparator cmp{&columns, &keys};
  std::stable_sort(indices.begin(), indices.end(), cmp);
  return indices;
}

Result<std::vector<int64_t>> ArgSortParallel(
    const TablePtr& table, const std::vector<SortKey>& keys,
    const sim::ParallelOptions& options) {
  BENTO_TRACE_SPAN(kKernel, "sort.argsort_parallel");
  if (keys.empty()) return Status::Invalid("ArgSort requires at least one key");
  BENTO_ASSIGN_OR_RETURN(auto columns, ResolveKeyColumns(table, keys));
  const int64_t n = table->num_rows();

  int workers = sim::ResolveWorkers(options);
  // Runs beyond the physical thread count cannot sort concurrently and only
  // deepen the merge tree, so real mode caps the fan-out at the hardware
  // (simulated mode keeps one run per virtual worker for the makespan model).
  if (sim::WouldUseRealExecution(options)) {
    workers = std::min(workers, sim::ThreadPool::HardwareParallelism());
  }
  auto ranges = sim::SplitRange(n, workers, /*min_rows_per_chunk=*/4096);
  if (ranges.size() <= 1) return ArgSort(table, keys);

  Comparator cmp{&columns, &keys};
  std::vector<std::vector<int64_t>> runs(ranges.size());
  BENTO_RETURN_NOT_OK(sim::ParallelFor(
      static_cast<int64_t>(ranges.size()),
      [&](int64_t r) {
        auto [b, e] = ranges[static_cast<size_t>(r)];
        auto& run = runs[static_cast<size_t>(r)];
        run.resize(static_cast<size_t>(e - b));
        for (int64_t i = b; i < e; ++i) run[static_cast<size_t>(i - b)] = i;
        std::stable_sort(run.begin(), run.end(), cmp);
        return Status::OK();
      },
      options));
  return MergeSortedRuns(table, keys, std::move(runs), options);
}

Result<std::vector<int64_t>> MergeSortedRuns(
    const TablePtr& table, const std::vector<SortKey>& keys,
    std::vector<std::vector<int64_t>> runs,
    const sim::ParallelOptions& options) {
  BENTO_TRACE_SPAN(kKernel, "sort.merge_runs");
  if (keys.empty()) {
    return Status::Invalid("MergeSortedRuns requires at least one key");
  }
  BENTO_ASSIGN_OR_RETURN(auto columns, ResolveKeyColumns(table, keys));
  Comparator cmp{&columns, &keys};
  const int workers = sim::ResolveWorkers(options);

  runs.erase(std::remove_if(runs.begin(), runs.end(),
                            [](const std::vector<int64_t>& r) {
                              return r.empty();
                            }),
             runs.end());
  if (runs.empty()) return std::vector<int64_t>{};

  // One [a0,a1) x [b0,b1) -> out[off..) linear merge of a run pair's slice.
  struct Segment {
    const std::vector<int64_t>* a;
    const std::vector<int64_t>* b;
    int64_t a0, a1, b0, b1;
    std::vector<int64_t>* out;
    int64_t off;
  };

  int64_t total_segments = 0;
  while (runs.size() > 1) {
    std::vector<std::vector<int64_t>> next((runs.size() + 1) / 2);
    std::vector<Segment> segments;
    for (size_t p = 0; p + 1 < runs.size(); p += 2) {
      const auto& a = runs[p];
      const auto& b = runs[p + 1];
      auto& out = next[p / 2];
      out.resize(a.size() + b.size());
      const int64_t la = static_cast<int64_t>(a.size());
      const int64_t lb = static_cast<int64_t>(b.size());
      // Balanced splitters: cut A evenly, align B by binary search. Every
      // B row < the pivot merges in an earlier segment; B rows equal to the
      // pivot stay in the pivot's segment, where the merge takes A first —
      // ties across runs resolve to the lower (earlier-rows) run, exactly
      // like one serial stable sort.
      int64_t nseg = std::min<int64_t>((la + lb) / sim::kMorselRows + 1,
                                       static_cast<int64_t>(workers) * 4);
      if (nseg < 1) nseg = 1;
      int64_t prev_a = 0;
      int64_t prev_b = 0;
      for (int64_t s = 1; s <= nseg; ++s) {
        const int64_t a1 = s == nseg ? la : la * s / nseg;
        const int64_t b1 =
            s == nseg ? lb
                      : std::lower_bound(b.begin(), b.end(),
                                         a[static_cast<size_t>(a1)], cmp) -
                            b.begin();
        if (a1 > prev_a || b1 > prev_b) {
          segments.push_back(
              {&a, &b, prev_a, a1, prev_b, b1, &out, prev_a + prev_b});
        }
        prev_a = a1;
        prev_b = b1;
      }
    }
    if (runs.size() % 2 == 1) next.back() = std::move(runs.back());
    total_segments += static_cast<int64_t>(segments.size());
    BENTO_RETURN_NOT_OK(sim::ParallelFor(
        static_cast<int64_t>(segments.size()),
        [&](int64_t s) {
          const Segment& seg = segments[static_cast<size_t>(s)];
          // std::merge takes from B only when strictly smaller: A-on-tie.
          std::merge(seg.a->begin() + seg.a0, seg.a->begin() + seg.a1,
                     seg.b->begin() + seg.b0, seg.b->begin() + seg.b1,
                     seg.out->begin() + seg.off, cmp);
          return Status::OK();
        },
        options));
    runs = std::move(next);
  }
  static obs::Counter* c_segments =
      obs::MetricsRegistry::Global().counter("sort.merge.segments");
  c_segments->Add(static_cast<uint64_t>(total_segments));
  return std::move(runs[0]);
}

Result<TablePtr> SortTable(const TablePtr& table,
                           const std::vector<SortKey>& keys) {
  BENTO_ASSIGN_OR_RETURN(auto indices, ArgSort(table, keys));
  return TakeTable(table, indices);
}

namespace {

/// Cross-table cell comparison; mirrors CompareCell but over two arrays.
int CompareCellsAcross(const Array& l, int64_t i, const Array& r, int64_t j,
                       bool ascending) {
  const bool ln = l.IsNull(i);
  const bool rn = r.IsNull(j);
  if (ln || rn) {
    if (ln && rn) return 0;
    return ln ? 1 : -1;
  }
  int cmp = 0;
  switch (l.type()) {
    case TypeId::kBool: {
      int a = l.bool_data()[i] != 0;
      int b = r.bool_data()[j] != 0;
      cmp = a < b ? -1 : (a > b ? 1 : 0);
      break;
    }
    case TypeId::kString: {
      std::string_view a = l.GetView(i);
      std::string_view b = r.GetView(j);
      cmp = a < b ? -1 : (a > b ? 1 : 0);
      break;
    }
    case TypeId::kCategorical: {
      const std::string& a =
          (*l.dictionary())[static_cast<size_t>(l.codes_data()[i])];
      const std::string& b =
          (*r.dictionary())[static_cast<size_t>(r.codes_data()[j])];
      cmp = a < b ? -1 : (a > b ? 1 : 0);
      break;
    }
    case TypeId::kFloat64: {
      double a = l.float64_data()[i];
      double b = r.float64_data()[j];
      const bool anan = std::isnan(a);
      const bool bnan = std::isnan(b);
      if (anan || bnan) {
        if (anan && bnan) return 0;
        return anan ? 1 : -1;
      }
      cmp = a < b ? -1 : (a > b ? 1 : 0);
      break;
    }
    default: {
      int64_t a = l.int64_data()[i];
      int64_t b = r.int64_data()[j];
      cmp = a < b ? -1 : (a > b ? 1 : 0);
      break;
    }
  }
  return ascending ? cmp : -cmp;
}

}  // namespace

Result<int> CompareTableRows(const TablePtr& a, int64_t i, const TablePtr& b,
                             int64_t j, const std::vector<SortKey>& keys) {
  for (const SortKey& key : keys) {
    BENTO_ASSIGN_OR_RETURN(auto ca, a->GetColumn(key.column));
    BENTO_ASSIGN_OR_RETURN(auto cb, b->GetColumn(key.column));
    if (ca->type() != cb->type()) {
      return Status::TypeError("sort key type mismatch across runs");
    }
    int cmp = CompareCellsAcross(*ca, i, *cb, j, key.ascending);
    if (cmp != 0) return cmp;
  }
  return 0;
}

}  // namespace bento::kern
