#ifndef BENTO_KERNELS_ROW_HASH_H_
#define BENTO_KERNELS_ROW_HASH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/common.h"
#include "sim/parallel.h"

namespace bento::kern {

/// \brief 64-bit hash of every row over `columns` (all columns when empty).
/// Nulls hash to a fixed tag so null == null for grouping/deduplication
/// (the dataframe-library convention, unlike SQL joins).
Result<std::vector<uint64_t>> HashRows(const TablePtr& table,
                                       const std::vector<std::string>& columns);

/// \brief HashRows fanned out over sim::ParallelFor in disjoint row ranges;
/// bit-identical to the serial result in both execution modes.
Result<std::vector<uint64_t>> HashRowsParallel(
    const TablePtr& table, const std::vector<std::string>& columns,
    const sim::ParallelOptions& options);

/// \brief Equality of row `i` in `left` and row `j` in `right` over
/// pre-resolved column index pairs. Used to resolve hash collisions.
class RowEquality {
 public:
  /// `left_cols[k]` pairs with `right_cols[k]`; the column types must match.
  static Result<RowEquality> Make(const TablePtr& left,
                                  const std::vector<std::string>& left_cols,
                                  const TablePtr& right,
                                  const std::vector<std::string>& right_cols);

  bool Equal(int64_t i, int64_t j) const;

 private:
  RowEquality() = default;
  std::vector<ArrayPtr> left_;
  std::vector<ArrayPtr> right_;
  /// Per pair: both categorical sharing one dictionary object, enabling the
  /// integer-code equality fast path.
  std::vector<bool> same_dict_;
};

}  // namespace bento::kern

#endif  // BENTO_KERNELS_ROW_HASH_H_
