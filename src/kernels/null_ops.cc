#include "kernels/null_ops.h"

#include <cmath>

#include "columnar/builder.h"
#include "kernels/selection.h"

namespace bento::kern {

Result<ArrayPtr> IsNull(const ArrayPtr& values, NullProbe probe) {
  const int64_t n = values->length();

  if (probe == NullProbe::kMetadata) {
    // Fast path straight off the validity bitmap; a column without a bitmap
    // is all-valid and needs no per-row work beyond emitting falses.
    col::BoolBuilder out;
    out.Reserve(n);
    const uint8_t* bits = values->validity_bits();
    if (bits == nullptr || values->null_count() == 0) {
      for (int64_t i = 0; i < n; ++i) out.Append(false);
    } else {
      for (int64_t i = 0; i < n; ++i) out.Append(!col::BitIsSet(bits, i));
    }
    return out.Finish();
  }

  // Scan path: re-derive nullness from the values themselves, the way a
  // sentinel-based representation must (floats: NaN test; other types:
  // per-slot probe through the generic IsNull accessor).
  col::BoolBuilder out;
  out.Reserve(n);
  if (values->type() == TypeId::kFloat64) {
    const double* data = values->float64_data();
    for (int64_t i = 0; i < n; ++i) {
      out.Append(std::isnan(data[i]) || values->IsNull(i));
    }
  } else if (values->type() == TypeId::kString) {
    // Sentinel model: an object-dtype scan dereferences every element, so
    // touch the payload bytes of valid slots before deciding.
    uint64_t touched = 0;
    for (int64_t i = 0; i < n; ++i) {
      const bool is_null = values->IsNull(i);
      if (!is_null) {
        std::string_view v = values->GetView(i);
        if (!v.empty()) touched += static_cast<unsigned char>(v.front());
      }
      out.Append(is_null);
    }
    // Keep the compiler from eliding the touches.
    if (touched == UINT64_MAX) return Status::Invalid("unreachable");
  } else {
    for (int64_t i = 0; i < n; ++i) out.Append(values->IsNull(i));
  }
  return out.Finish();
}

Result<std::vector<int64_t>> NullCounts(const TablePtr& table,
                                        NullProbe probe) {
  std::vector<int64_t> counts;
  counts.reserve(static_cast<size_t>(table->num_columns()));
  for (const ArrayPtr& c : table->columns()) {
    if (probe == NullProbe::kMetadata) {
      counts.push_back(c->null_count());
    } else {
      BENTO_ASSIGN_OR_RETURN(auto mask, IsNull(c, NullProbe::kScan));
      int64_t count = 0;
      const uint8_t* data = mask->bool_data();
      for (int64_t i = 0; i < mask->length(); ++i) count += data[i] != 0;
      counts.push_back(count);
    }
  }
  return counts;
}

Result<ArrayPtr> FillNull(const ArrayPtr& values, const Scalar& fill) {
  if (fill.is_null() || values->null_count() == 0) return values;
  const int64_t n = values->length();
  switch (values->type()) {
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      BENTO_ASSIGN_OR_RETURN(int64_t fv, fill.AsInt());
      col::Int64Builder out;
      out.Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        out.Append(values->IsValid(i) ? values->int64_data()[i] : fv);
      }
      BENTO_ASSIGN_OR_RETURN(auto a, out.Finish());
      if (values->type() == TypeId::kTimestamp) {
        return Array::MakeFixed(TypeId::kTimestamp, a->length(),
                                a->data_buffer(), nullptr, 0);
      }
      return a;
    }
    case TypeId::kFloat64: {
      BENTO_ASSIGN_OR_RETURN(double fv, fill.AsDouble());
      col::Float64Builder out;
      out.Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        out.Append(values->IsValid(i) ? values->float64_data()[i] : fv);
      }
      return out.Finish();
    }
    case TypeId::kBool: {
      if (fill.kind() != Scalar::Kind::kBool) {
        return Status::TypeError("fill value for bool column must be bool");
      }
      col::BoolBuilder out;
      out.Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        out.Append(values->IsValid(i) ? values->bool_data()[i] != 0
                                      : fill.bool_value());
      }
      return out.Finish();
    }
    case TypeId::kString: {
      if (fill.kind() != Scalar::Kind::kString) {
        return Status::TypeError("fill value for string column must be string");
      }
      col::StringBuilder out;
      out.Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        out.Append(values->IsValid(i) ? values->GetView(i)
                                      : std::string_view(fill.string_value()));
      }
      return out.Finish();
    }
    case TypeId::kCategorical: {
      if (fill.kind() != Scalar::Kind::kString) {
        return Status::TypeError(
            "fill value for categorical column must be string");
      }
      // Extend the dictionary when the fill value is unseen.
      auto dict = std::make_shared<std::vector<std::string>>(
          values->dictionary() != nullptr ? *values->dictionary()
                                          : std::vector<std::string>{});
      int32_t fill_code = -1;
      for (size_t k = 0; k < dict->size(); ++k) {
        if ((*dict)[k] == fill.string_value()) {
          fill_code = static_cast<int32_t>(k);
          break;
        }
      }
      if (fill_code < 0) {
        fill_code = static_cast<int32_t>(dict->size());
        dict->push_back(fill.string_value());
      }
      col::CategoricalBuilder out;
      for (int64_t i = 0; i < n; ++i) {
        out.Append(values->IsValid(i) ? values->codes_data()[i] : fill_code);
      }
      return out.Finish(std::move(dict));
    }
  }
  return Status::Invalid("unsupported type in FillNull");
}

Result<ArrayPtr> FillNullWithMean(const ArrayPtr& values) {
  if (values->type() != TypeId::kFloat64 && values->type() != TypeId::kInt64) {
    return Status::TypeError("mean fill requires a numeric column");
  }
  double sum = 0.0;
  int64_t count = 0;
  for (int64_t i = 0; i < values->length(); ++i) {
    if (!values->IsValid(i)) continue;
    sum += values->type() == TypeId::kFloat64
               ? values->float64_data()[i]
               : static_cast<double>(values->int64_data()[i]);
    ++count;
  }
  const double mean = count > 0 ? sum / static_cast<double>(count) : 0.0;
  if (values->type() == TypeId::kInt64) {
    return FillNull(values, Scalar::Int(static_cast<int64_t>(mean)));
  }
  return FillNull(values, Scalar::Double(mean));
}

Result<TablePtr> DropNullRows(const TablePtr& table,
                              const std::vector<std::string>& subset) {
  std::vector<int> column_indices;
  if (subset.empty()) {
    for (int i = 0; i < table->num_columns(); ++i) column_indices.push_back(i);
  } else {
    for (const std::string& name : subset) {
      int i = table->schema()->IndexOf(name);
      if (i < 0) return Status::KeyError("no column named '", name, "'");
      column_indices.push_back(i);
    }
  }

  col::BoolBuilder keep;
  keep.Reserve(table->num_rows());
  for (int64_t r = 0; r < table->num_rows(); ++r) {
    bool any_null = false;
    for (int c : column_indices) {
      if (table->column(c)->IsNull(r)) {
        any_null = true;
        break;
      }
    }
    keep.Append(!any_null);
  }
  BENTO_ASSIGN_OR_RETURN(auto mask, keep.Finish());
  return FilterTable(table, mask);
}

}  // namespace bento::kern
