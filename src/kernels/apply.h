#ifndef BENTO_KERNELS_APPLY_H_
#define BENTO_KERNELS_APPLY_H_

#include <functional>

#include "columnar/builder.h"
#include "kernels/common.h"
#include "sim/parallel.h"

namespace bento::kern {

/// \brief User function for row-wise apply: produces one scalar per row.
using RowFn = std::function<Result<Scalar>(const Table&, int64_t row)>;

/// \brief Row-wise `apply`: evaluates `fn` for every row and assembles a
/// column of `out_type`. This is the slowest preparator family in the paper
/// (Pandas goes out of memory on Patrol with it) because every row crosses
/// the scalar boundary — we reproduce that by materializing a boxed Scalar
/// per row.
Result<ArrayPtr> ApplyRows(const TablePtr& table, const RowFn& fn,
                           TypeId out_type);

/// \brief Chunk-parallel row-wise apply (multithreaded engines).
Result<ArrayPtr> ApplyRowsParallel(const TablePtr& table, const RowFn& fn,
                                   TypeId out_type,
                                   const sim::ParallelOptions& options = {});

/// \brief Appends scalars produced row-by-row into a typed column.
/// Exposed for engines that stream chunks themselves.
class ScalarColumnAssembler {
 public:
  explicit ScalarColumnAssembler(TypeId type) : type_(type) {}

  Status Append(const Scalar& s);
  Result<ArrayPtr> Finish();
  TypeId type() const { return type_; }

 private:
  TypeId type_;
  col::Int64Builder int_builder_;
  col::Float64Builder double_builder_;
  col::BoolBuilder bool_builder_;
  col::StringBuilder string_builder_;
  col::TimestampBuilder ts_builder_;
};

}  // namespace bento::kern

#endif  // BENTO_KERNELS_APPLY_H_
