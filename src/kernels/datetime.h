#ifndef BENTO_KERNELS_DATETIME_H_
#define BENTO_KERNELS_DATETIME_H_

#include <string>

#include "kernels/common.h"

namespace bento::kern {

/// \brief Parses a string column into kTimestamp (`to_datetime`).
///
/// Accepted layouts (auto-detected per value):
///   "YYYY-MM-DD", "YYYY-MM-DD HH:MM:SS", "YYYY/MM/DD", "MM/DD/YYYY",
///   "YYYY-MM-DDTHH:MM:SS".
/// Unparsable values become null when `coerce` is true, otherwise fail.
Result<ArrayPtr> ToDatetime(const ArrayPtr& values, bool coerce = true);

/// \brief Formats kTimestamp into strings ("%Y-%m-%d %H:%M:%S" fixed form,
/// or date-only when `date_only`).
Result<ArrayPtr> FormatDatetime(const ArrayPtr& values, bool date_only = false);

/// \brief Extracts a component ("year", "month", "day", "hour", "weekday")
/// as int64.
Result<ArrayPtr> DatetimeComponent(const ArrayPtr& values,
                                   const std::string& component);

/// \brief Builds a timestamp scalar from components (UTC).
int64_t MakeTimestampMicros(int year, int month, int day, int hour = 0,
                            int minute = 0, int second = 0);

}  // namespace bento::kern

#endif  // BENTO_KERNELS_DATETIME_H_
