#include "kernels/datetime.h"

#include <cstdio>
#include <ctime>

#include "columnar/builder.h"

namespace bento::kern {

namespace {

constexpr int64_t kMicrosPerSecond = 1000000;

/// Days since the epoch for a (y, m, d) civil date; Howard Hinnant's
/// days_from_civil algorithm.
int64_t DaysFromCivil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int64_t>(era) * 146097 + static_cast<int64_t>(doe) -
         719468;
}

struct CivilTime {
  int year;
  unsigned month;
  unsigned day;
  unsigned hour;
  unsigned minute;
  unsigned second;
};

CivilTime CivilFromMicros(int64_t micros) {
  int64_t secs = micros / kMicrosPerSecond;
  if (micros < 0 && micros % kMicrosPerSecond != 0) --secs;
  int64_t days = secs / 86400;
  int64_t rem = secs % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  // civil_from_days
  int64_t z = days + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  return CivilTime{static_cast<int>(y + (m <= 2)), m, d,
                   static_cast<unsigned>(rem / 3600),
                   static_cast<unsigned>((rem % 3600) / 60),
                   static_cast<unsigned>(rem % 60)};
}

bool ParseDigits(std::string_view s, size_t pos, size_t len, int* out) {
  if (pos + len > s.size()) return false;
  int v = 0;
  for (size_t i = 0; i < len; ++i) {
    char c = s[pos + i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  *out = v;
  return true;
}

/// Parses one timestamp string; returns false if no layout matches.
bool ParseTimestamp(std::string_view s, int64_t* micros_out) {
  int y = 0, mo = 0, d = 0, h = 0, mi = 0, se = 0;
  bool date_ok = false;
  size_t time_pos = 0;

  if (s.size() >= 10 && (s[4] == '-' || s[4] == '/') && s[7] == s[4]) {
    // YYYY-MM-DD or YYYY/MM/DD
    date_ok = ParseDigits(s, 0, 4, &y) && ParseDigits(s, 5, 2, &mo) &&
              ParseDigits(s, 8, 2, &d);
    time_pos = 10;
  } else if (s.size() >= 10 && s[2] == '/' && s[5] == '/') {
    // MM/DD/YYYY
    date_ok = ParseDigits(s, 0, 2, &mo) && ParseDigits(s, 3, 2, &d) &&
              ParseDigits(s, 6, 4, &y);
    time_pos = 10;
  }
  if (!date_ok || mo < 1 || mo > 12 || d < 1 || d > 31) return false;

  if (s.size() >= time_pos + 9 &&
      (s[time_pos] == ' ' || s[time_pos] == 'T')) {
    if (!ParseDigits(s, time_pos + 1, 2, &h) ||
        s[time_pos + 3] != ':' ||
        !ParseDigits(s, time_pos + 4, 2, &mi) ||
        s[time_pos + 6] != ':' ||
        !ParseDigits(s, time_pos + 7, 2, &se)) {
      return false;
    }
    if (h > 23 || mi > 59 || se > 60) return false;
  } else if (s.size() > time_pos) {
    return false;  // trailing garbage
  }

  const int64_t days = DaysFromCivil(y, static_cast<unsigned>(mo),
                                     static_cast<unsigned>(d));
  *micros_out =
      ((days * 86400) + h * 3600 + mi * 60 + se) * kMicrosPerSecond;
  return true;
}

}  // namespace

int64_t MakeTimestampMicros(int year, int month, int day, int hour, int minute,
                            int second) {
  const int64_t days = DaysFromCivil(year, static_cast<unsigned>(month),
                                     static_cast<unsigned>(day));
  return ((days * 86400) + hour * 3600 + minute * 60 + second) *
         kMicrosPerSecond;
}

Result<ArrayPtr> ToDatetime(const ArrayPtr& values, bool coerce) {
  if (values->type() == TypeId::kTimestamp) return values;
  if (values->type() != TypeId::kString) {
    return Status::TypeError("to_datetime requires a string column, got ",
                             col::TypeName(values->type()));
  }
  col::TimestampBuilder out;
  out.Reserve(values->length());
  for (int64_t i = 0; i < values->length(); ++i) {
    if (!values->IsValid(i)) {
      out.AppendNull();
      continue;
    }
    int64_t micros = 0;
    if (ParseTimestamp(values->GetView(i), &micros)) {
      out.Append(micros);
    } else if (coerce) {
      out.AppendNull();
    } else {
      return Status::Invalid("unparsable datetime: '",
                             std::string(values->GetView(i)), "'");
    }
  }
  return out.Finish();
}

Result<ArrayPtr> FormatDatetime(const ArrayPtr& values, bool date_only) {
  if (values->type() != TypeId::kTimestamp) {
    return Status::TypeError("format_datetime requires a timestamp column");
  }
  col::StringBuilder out;
  out.Reserve(values->length());
  char buf[32];
  for (int64_t i = 0; i < values->length(); ++i) {
    if (!values->IsValid(i)) {
      out.AppendNull();
      continue;
    }
    CivilTime ct = CivilFromMicros(values->int64_data()[i]);
    if (date_only) {
      std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", ct.year, ct.month,
                    ct.day);
    } else {
      std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u %02u:%02u:%02u", ct.year,
                    ct.month, ct.day, ct.hour, ct.minute, ct.second);
    }
    out.Append(buf);
  }
  return out.Finish();
}

Result<ArrayPtr> DatetimeComponent(const ArrayPtr& values,
                                   const std::string& component) {
  if (values->type() != TypeId::kTimestamp) {
    return Status::TypeError("datetime component requires a timestamp column");
  }
  col::Int64Builder out;
  out.Reserve(values->length());
  for (int64_t i = 0; i < values->length(); ++i) {
    if (!values->IsValid(i)) {
      out.AppendNull();
      continue;
    }
    CivilTime ct = CivilFromMicros(values->int64_data()[i]);
    int64_t v;
    if (component == "year") {
      v = ct.year;
    } else if (component == "month") {
      v = ct.month;
    } else if (component == "day") {
      v = ct.day;
    } else if (component == "hour") {
      v = ct.hour;
    } else if (component == "weekday") {
      int64_t days = values->int64_data()[i] / (86400 * kMicrosPerSecond);
      v = ((days % 7) + 7 + 3) % 7;  // epoch (1970-01-01) was a Thursday
                                     // (Monday = 0)
    } else {
      return Status::Invalid("unknown datetime component '", component, "'");
    }
    out.Append(v);
  }
  return out.Finish();
}

}  // namespace bento::kern
