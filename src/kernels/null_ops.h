#ifndef BENTO_KERNELS_NULL_OPS_H_
#define BENTO_KERNELS_NULL_OPS_H_

#include <string>
#include <vector>

#include "kernels/common.h"

namespace bento::kern {

/// \brief Strategy for locating nulls; the engines' choice here reproduces
/// the paper's isna results.
///
///  - kMetadata: O(1) per column using the cached/bitmap null count and the
///    validity bits (the Arrow-backed model: Pandas2, Polars, CuDF).
///  - kScan: elementwise re-examination of values — NaN test for floats,
///    per-slot validity probe otherwise (the NumPy-backed Pandas model).
enum class NullProbe { kMetadata, kScan };

/// \brief Boolean mask that is true where `values` is null.
Result<ArrayPtr> IsNull(const ArrayPtr& values, NullProbe probe);

/// \brief Per-column null counts for a whole table (`isna().sum()`):
/// the common EDA call. Metadata probe popcounts bitmaps; scan probe visits
/// every value.
Result<std::vector<int64_t>> NullCounts(const TablePtr& table, NullProbe probe);

/// \brief Replaces nulls with `fill` (type-checked against the column).
Result<ArrayPtr> FillNull(const ArrayPtr& values, const Scalar& fill);

/// \brief Replaces nulls in a float column with the column mean (the
/// `fillna(df.mean())` idiom used by the Kaggle pipelines).
Result<ArrayPtr> FillNullWithMean(const ArrayPtr& values);

/// \brief Drops rows that contain a null in any of `subset` columns
/// (all columns when `subset` is empty).
Result<TablePtr> DropNullRows(const TablePtr& table,
                              const std::vector<std::string>& subset = {});

}  // namespace bento::kern

#endif  // BENTO_KERNELS_NULL_OPS_H_
