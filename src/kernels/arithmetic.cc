#include "kernels/arithmetic.h"

#include <cmath>

#include "columnar/builder.h"

namespace bento::kern {

namespace {

Status CheckNumeric(const ArrayPtr& a, const char* side) {
  if (!col::IsNumeric(a->type()) && a->type() != TypeId::kBool) {
    return Status::TypeError("arithmetic ", side, " must be numeric, got ",
                             col::TypeName(a->type()));
  }
  return Status::OK();
}

double At(const Array& a, int64_t i) {
  switch (a.type()) {
    case TypeId::kFloat64:
      return a.float64_data()[i];
    case TypeId::kBool:
      return a.bool_data()[i] != 0 ? 1.0 : 0.0;
    default:
      return static_cast<double>(a.int64_data()[i]);
  }
}

bool IntResult(BinaryOp op, const ArrayPtr& l, const ArrayPtr& r) {
  if (op != BinaryOp::kAdd && op != BinaryOp::kSub && op != BinaryOp::kMul) {
    return false;
  }
  return l->type() == TypeId::kInt64 &&
         (r == nullptr || r->type() == TypeId::kInt64);
}

}  // namespace

Result<ArrayPtr> BinaryNumeric(const ArrayPtr& left, BinaryOp op,
                               const ArrayPtr& right) {
  BENTO_RETURN_NOT_OK(CheckNumeric(left, "lhs"));
  BENTO_RETURN_NOT_OK(CheckNumeric(right, "rhs"));
  if (left->length() != right->length()) {
    return Status::Invalid("arithmetic length mismatch");
  }
  const int64_t n = left->length();

  if (IntResult(op, left, right)) {
    col::Int64Builder out;
    out.Reserve(n);
    const int64_t* l = left->int64_data();
    const int64_t* r = right->int64_data();
    for (int64_t i = 0; i < n; ++i) {
      if (!left->IsValid(i) || !right->IsValid(i)) {
        out.AppendNull();
        continue;
      }
      int64_t v = op == BinaryOp::kAdd   ? l[i] + r[i]
                  : op == BinaryOp::kSub ? l[i] - r[i]
                                         : l[i] * r[i];
      out.Append(v);
    }
    return out.Finish();
  }

  col::Float64Builder out;
  out.Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    if (!left->IsValid(i) || !right->IsValid(i)) {
      out.AppendNull();
      continue;
    }
    const double l = At(*left, i);
    const double r = At(*right, i);
    double v = 0.0;
    bool ok = true;
    switch (op) {
      case BinaryOp::kAdd:
        v = l + r;
        break;
      case BinaryOp::kSub:
        v = l - r;
        break;
      case BinaryOp::kMul:
        v = l * r;
        break;
      case BinaryOp::kDiv:
        ok = r != 0.0;
        v = ok ? l / r : 0.0;
        break;
      case BinaryOp::kMod:
        ok = r != 0.0;
        v = ok ? std::fmod(l, r) : 0.0;
        break;
      case BinaryOp::kPow:
        v = std::pow(l, r);
        ok = !std::isnan(v);
        break;
    }
    out.AppendMaybe(v, ok);
  }
  return out.Finish();
}

Result<ArrayPtr> BinaryNumericScalar(const ArrayPtr& left, BinaryOp op,
                                     const Scalar& right) {
  BENTO_RETURN_NOT_OK(CheckNumeric(left, "lhs"));
  if (right.is_null()) {
    return Array::MakeAllNull(
        left->type() == TypeId::kInt64 ? TypeId::kInt64 : TypeId::kFloat64,
        left->length());
  }
  BENTO_ASSIGN_OR_RETURN(double r, right.AsDouble());
  const int64_t n = left->length();

  const bool int_out = left->type() == TypeId::kInt64 &&
                       right.kind() == Scalar::Kind::kInt &&
                       (op == BinaryOp::kAdd || op == BinaryOp::kSub ||
                        op == BinaryOp::kMul);
  if (int_out) {
    col::Int64Builder out;
    out.Reserve(n);
    const int64_t* l = left->int64_data();
    const int64_t ri = right.int_value();
    for (int64_t i = 0; i < n; ++i) {
      if (!left->IsValid(i)) {
        out.AppendNull();
        continue;
      }
      int64_t v = op == BinaryOp::kAdd   ? l[i] + ri
                  : op == BinaryOp::kSub ? l[i] - ri
                                         : l[i] * ri;
      out.Append(v);
    }
    return out.Finish();
  }

  col::Float64Builder out;
  out.Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    if (!left->IsValid(i)) {
      out.AppendNull();
      continue;
    }
    const double l = At(*left, i);
    double v = 0.0;
    bool ok = true;
    switch (op) {
      case BinaryOp::kAdd:
        v = l + r;
        break;
      case BinaryOp::kSub:
        v = l - r;
        break;
      case BinaryOp::kMul:
        v = l * r;
        break;
      case BinaryOp::kDiv:
        ok = r != 0.0;
        v = ok ? l / r : 0.0;
        break;
      case BinaryOp::kMod:
        ok = r != 0.0;
        v = ok ? std::fmod(l, r) : 0.0;
        break;
      case BinaryOp::kPow:
        v = std::pow(l, r);
        ok = !std::isnan(v);
        break;
    }
    out.AppendMaybe(v, ok);
  }
  return out.Finish();
}

Result<ArrayPtr> UnaryNumeric(const ArrayPtr& values, UnaryOp op) {
  BENTO_RETURN_NOT_OK(CheckNumeric(values, "operand"));
  const int64_t n = values->length();

  if (values->type() == TypeId::kInt64 &&
      (op == UnaryOp::kNeg || op == UnaryOp::kAbs)) {
    col::Int64Builder out;
    out.Reserve(n);
    const int64_t* d = values->int64_data();
    for (int64_t i = 0; i < n; ++i) {
      out.AppendMaybe(op == UnaryOp::kNeg ? -d[i] : std::abs(d[i]),
                      values->IsValid(i));
    }
    return out.Finish();
  }

  col::Float64Builder out;
  out.Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    if (!values->IsValid(i)) {
      out.AppendNull();
      continue;
    }
    const double v = At(*values, i);
    double r = 0.0;
    bool ok = true;
    switch (op) {
      case UnaryOp::kNeg:
        r = -v;
        break;
      case UnaryOp::kAbs:
        r = std::abs(v);
        break;
      case UnaryOp::kLog:
        ok = v > 0.0;
        r = ok ? std::log(v) : 0.0;
        break;
      case UnaryOp::kLog1p:
        ok = v > -1.0;
        r = ok ? std::log1p(v) : 0.0;
        break;
      case UnaryOp::kExp:
        r = std::exp(v);
        break;
      case UnaryOp::kSqrt:
        ok = v >= 0.0;
        r = ok ? std::sqrt(v) : 0.0;
        break;
    }
    out.AppendMaybe(r, ok && !std::isnan(r));
  }
  return out.Finish();
}

Result<ArrayPtr> Round(const ArrayPtr& values, int decimals) {
  if (values->type() == TypeId::kInt64) return values;
  if (values->type() != TypeId::kFloat64) {
    return Status::TypeError("round requires a numeric column, got ",
                             col::TypeName(values->type()));
  }
  const double scale = std::pow(10.0, decimals);
  col::Float64Builder out;
  out.Reserve(values->length());
  const double* d = values->float64_data();
  for (int64_t i = 0; i < values->length(); ++i) {
    out.AppendMaybe(std::round(d[i] * scale) / scale, values->IsValid(i));
  }
  return out.Finish();
}

}  // namespace bento::kern
