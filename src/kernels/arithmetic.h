#ifndef BENTO_KERNELS_ARITHMETIC_H_
#define BENTO_KERNELS_ARITHMETIC_H_

#include "kernels/common.h"

namespace bento::kern {

enum class BinaryOp { kAdd, kSub, kMul, kDiv, kMod, kPow };
enum class UnaryOp { kNeg, kAbs, kLog, kLog1p, kExp, kSqrt };

/// \brief Elementwise binary arithmetic on numeric columns; the result is
/// float64 unless both inputs are int64 and the op is closed over integers
/// (+, -, *). Nulls propagate; division by zero yields null.
Result<ArrayPtr> BinaryNumeric(const ArrayPtr& left, BinaryOp op,
                               const ArrayPtr& right);
Result<ArrayPtr> BinaryNumericScalar(const ArrayPtr& left, BinaryOp op,
                                     const Scalar& right);

/// \brief Elementwise unary math; result is float64 (kNeg/kAbs keep int64).
/// Domain errors (log of non-positive, sqrt of negative) yield null.
Result<ArrayPtr> UnaryNumeric(const ArrayPtr& values, UnaryOp op);

/// \brief Rounds float64 values to `decimals` places (the `round`
/// normalization preparator); int64 input is returned unchanged.
Result<ArrayPtr> Round(const ArrayPtr& values, int decimals);

}  // namespace bento::kern

#endif  // BENTO_KERNELS_ARITHMETIC_H_
