#include "kernels/flat_index.h"

#include <algorithm>
#include <atomic>

#include "obs/metrics.h"
#include "sim/machine.h"
#include "sim/thread_pool.h"

namespace bento::kern {

namespace {

/// Smallest power of two >= v (and >= 16, so probes always have headroom).
uint64_t CapacityFor(int64_t keys) {
  // <= 2/3 load: capacity >= keys * 3 / 2.
  uint64_t want = static_cast<uint64_t>(keys) + (static_cast<uint64_t>(keys) >> 1);
  uint64_t cap = 16;
  while (cap < want) cap <<= 1;
  return cap;
}

std::atomic<bool> g_forced_collisions{false};

}  // namespace

namespace detail {

bool ForcedHashCollisionsActive() {
  return g_forced_collisions.load(std::memory_order_relaxed);
}

void SetForcedHashCollisions(bool active) {
  g_forced_collisions.store(active, std::memory_order_relaxed);
}

}  // namespace detail

int FlatIndex::PlanPartitions(int64_t n, const sim::ParallelOptions& options) {
  int workers = sim::ResolveWorkers(options);
  // Partition fan-out multiplies hash-table and scatter work, so in real
  // mode it must track the *physical* machine: more partitions than
  // hardware threads is pure amplification (the seed ran 4 partitions on a
  // 1-core host and went 4.5x slower than serial). Simulated mode keeps
  // partitions == virtual workers — the fan-out is what the paper's
  // engines schedule, and makespan credit models the overlap.
  if (sim::WouldUseRealExecution(options)) {
    workers = std::min(workers, sim::ThreadPool::HardwareParallelism());
  }
  if (workers <= 1 || n < 8192) return 1;
  int parts = 1;
  while (parts < workers && parts < 64 && n / (parts * 2) >= 4096) {
    parts *= 2;
  }
  return parts;
}

int FlatIndex::PartShiftFor(int parts) {
  int bits = 0;
  while ((1 << bits) < parts) ++bits;
  return 64 - bits;
}

void FlatIndex::Part::Reset(int64_t expected_rows) {
  keys = 0;
  probes = 0;
  collisions = 0;
  const uint64_t cap = CapacityFor(expected_rows);
  mask = cap - 1;
  slots.assign(cap, Slot());
}

void FlatIndex::ReportBuildStats() const {
  int64_t probes = 0;
  int64_t collisions = 0;
  for (const Part& p : parts_) {
    probes += p.probes;
    collisions += p.collisions;
  }
  static obs::Counter* c_probes =
      obs::MetricsRegistry::Global().counter("flat_index.build_probes");
  static obs::Counter* c_collisions =
      obs::MetricsRegistry::Global().counter("flat_index.build_collisions");
  c_probes->Add(static_cast<uint64_t>(probes));
  c_collisions->Add(static_cast<uint64_t>(collisions));
}

FlatGrouper::~FlatGrouper() {
  if (probes_ == 0) return;
  static obs::Counter* c_probes =
      obs::MetricsRegistry::Global().counter("flat_grouper.probes");
  static obs::Counter* c_collisions =
      obs::MetricsRegistry::Global().counter("flat_grouper.collisions");
  c_probes->Add(static_cast<uint64_t>(probes_));
  c_collisions->Add(static_cast<uint64_t>(collisions_));
}

void FlatGrouper::Reset(int64_t expected_groups) {
  num_groups_ = 0;
  representatives_.clear();
  const uint64_t cap = CapacityFor(expected_groups < 16 ? 16 : expected_groups);
  mask_ = cap - 1;
  slots_.assign(cap, Slot());
}

void FlatGrouper::Grow() {
  const uint64_t cap = (mask_ + 1) << 1;
  std::vector<Slot> fresh(cap);
  const uint64_t mask = cap - 1;
  for (const Slot& slot : slots_) {
    if (slot.group == kNone) continue;
    uint64_t s = slot.hash & mask;
    while (fresh[s].group != kNone) s = (s + 1) & mask;
    fresh[s] = slot;
  }
  slots_ = std::move(fresh);
  mask_ = mask;
}

void StringInterner::Reset(int64_t expected) {
  arena_.clear();
  offsets_.assign(1, 0);
  hashes_.clear();
  const uint64_t cap = CapacityFor(expected < 16 ? 16 : expected);
  mask_ = cap - 1;
  slots_.assign(cap, Slot());
}

uint64_t StringInterner::HashOf(std::string_view s) const {
  // The forced-collision test mode funnels every string into one slot
  // cluster so probe/equality fallback paths get exercised.
  if (detail::ForcedHashCollisionsActive()) return 42;
  return Hash64(s);
}

int32_t StringInterner::FindOrInsert(std::string_view s) {
  if (size() * 3 >= static_cast<int64_t>(slots_.size()) * 2) Grow();
  const uint64_t h = HashOf(s);
  uint64_t i = h & mask_;
  while (true) {
    Slot& slot = slots_[i];
    if (slot.id == kNone) {
      const int32_t id = static_cast<int32_t>(size());
      arena_.append(s);
      offsets_.push_back(static_cast<int64_t>(arena_.size()));
      hashes_.push_back(h);
      slot.hash = h;
      slot.id = id;
      return id;
    }
    if (slot.hash == h && View(slot.id) == s) return slot.id;
    i = (i + 1) & mask_;
  }
}

int32_t StringInterner::Find(std::string_view s) const {
  const uint64_t h = HashOf(s);
  uint64_t i = h & mask_;
  while (true) {
    const Slot& slot = slots_[i];
    if (slot.id == kNone) return kNone;
    if (slot.hash == h && View(slot.id) == s) return slot.id;
    i = (i + 1) & mask_;
  }
}

void StringInterner::Grow() {
  const uint64_t cap = (mask_ + 1) << 1;
  std::vector<Slot> fresh(cap);
  const uint64_t mask = cap - 1;
  for (const Slot& slot : slots_) {
    if (slot.id == kNone) continue;
    uint64_t s = slot.hash & mask;
    while (fresh[s].id != kNone) s = (s + 1) & mask;
    fresh[s] = slot;
  }
  slots_ = std::move(fresh);
  mask_ = mask;
}

std::vector<std::string> StringInterner::ToStrings() const {
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(size()));
  for (int32_t id = 0; id < static_cast<int32_t>(size()); ++id) {
    out.emplace_back(View(id));
  }
  return out;
}

}  // namespace bento::kern
