#ifndef BENTO_KERNELS_JOIN_H_
#define BENTO_KERNELS_JOIN_H_

#include <string>
#include <vector>

#include "kernels/common.h"
#include "sim/parallel.h"

namespace bento::kern {

struct JoinOptions {
  JoinType type = JoinType::kInner;
  /// Suffix applied to right-side columns whose names collide with the left.
  std::string right_suffix = "_r";
};

/// \brief Single-key hash join (build on right, probe from left).
///
/// Output: all left columns followed by the right columns except the right
/// key. Left join emits nulls for unmatched left rows; when one left row
/// matches k right rows it is replicated k times (Pandas `merge` semantics).
Result<TablePtr> HashJoin(const TablePtr& left, const TablePtr& right,
                          const std::string& left_key,
                          const std::string& right_key,
                          const JoinOptions& options = {});

/// \brief Probe-parallel variant: the build side is shared, probes run over
/// row chunks through sim::ParallelFor.
Result<TablePtr> HashJoinParallel(const TablePtr& left, const TablePtr& right,
                                  const std::string& left_key,
                                  const std::string& right_key,
                                  const JoinOptions& options = {},
                                  const sim::ParallelOptions& parallel = {});

}  // namespace bento::kern

#endif  // BENTO_KERNELS_JOIN_H_
