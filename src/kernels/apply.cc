#include "kernels/apply.h"

namespace bento::kern {

Status ScalarColumnAssembler::Append(const Scalar& s) {
  switch (type_) {
    case TypeId::kInt64: {
      if (s.is_null()) {
        int_builder_.AppendNull();
        return Status::OK();
      }
      BENTO_ASSIGN_OR_RETURN(int64_t v, s.AsInt());
      int_builder_.Append(v);
      return Status::OK();
    }
    case TypeId::kFloat64: {
      if (s.is_null()) {
        double_builder_.AppendNull();
        return Status::OK();
      }
      BENTO_ASSIGN_OR_RETURN(double v, s.AsDouble());
      double_builder_.Append(v);
      return Status::OK();
    }
    case TypeId::kBool: {
      if (s.is_null()) {
        bool_builder_.AppendNull();
        return Status::OK();
      }
      if (s.kind() != Scalar::Kind::kBool) {
        return Status::TypeError("apply produced non-bool for bool column");
      }
      bool_builder_.Append(s.bool_value());
      return Status::OK();
    }
    case TypeId::kString: {
      if (s.is_null()) {
        string_builder_.AppendNull();
        return Status::OK();
      }
      string_builder_.Append(s.ToString());
      return Status::OK();
    }
    case TypeId::kTimestamp: {
      if (s.is_null()) {
        ts_builder_.AppendNull();
        return Status::OK();
      }
      BENTO_ASSIGN_OR_RETURN(int64_t v, s.AsInt());
      ts_builder_.Append(v);
      return Status::OK();
    }
    case TypeId::kCategorical:
      return Status::NotImplemented("apply cannot emit categorical columns");
  }
  return Status::Invalid("bad output type");
}

Result<ArrayPtr> ScalarColumnAssembler::Finish() {
  switch (type_) {
    case TypeId::kInt64:
      return int_builder_.Finish();
    case TypeId::kFloat64:
      return double_builder_.Finish();
    case TypeId::kBool:
      return bool_builder_.Finish();
    case TypeId::kString:
      return string_builder_.Finish();
    case TypeId::kTimestamp:
      return ts_builder_.Finish();
    case TypeId::kCategorical:
      break;
  }
  return Status::Invalid("bad output type");
}

Result<ArrayPtr> ApplyRows(const TablePtr& table, const RowFn& fn,
                           TypeId out_type) {
  ScalarColumnAssembler assembler(out_type);
  for (int64_t i = 0; i < table->num_rows(); ++i) {
    BENTO_ASSIGN_OR_RETURN(Scalar s, fn(*table, i));
    BENTO_RETURN_NOT_OK(assembler.Append(s));
  }
  return assembler.Finish();
}

Result<ArrayPtr> ApplyRowsParallel(const TablePtr& table, const RowFn& fn,
                                   TypeId out_type,
                                   const sim::ParallelOptions& options) {
  int workers = options.max_workers;
  if (workers <= 0) {
    workers = sim::Session::Current() != nullptr
                  ? sim::Session::Current()->cores()
                  : 1;
  }
  auto ranges = sim::SplitRange(table->num_rows(), workers, 4096);
  if (ranges.size() <= 1) return ApplyRows(table, fn, out_type);

  std::vector<ArrayPtr> parts(ranges.size());
  BENTO_RETURN_NOT_OK(sim::ParallelFor(
      static_cast<int64_t>(ranges.size()),
      [&](int64_t r) -> Status {
        auto [b, e] = ranges[static_cast<size_t>(r)];
        ScalarColumnAssembler assembler(out_type);
        for (int64_t i = b; i < e; ++i) {
          BENTO_ASSIGN_OR_RETURN(Scalar s, fn(*table, i));
          BENTO_RETURN_NOT_OK(assembler.Append(s));
        }
        BENTO_ASSIGN_OR_RETURN(parts[static_cast<size_t>(r)],
                               assembler.Finish());
        return Status::OK();
      },
      options));

  // Concatenate the chunk outputs through a single-column table.
  std::vector<TablePtr> tables;
  auto schema = std::make_shared<col::Schema>(
      std::vector<col::Field>{{"v", out_type}});
  for (auto& p : parts) {
    BENTO_ASSIGN_OR_RETURN(auto t, Table::Make(schema, {std::move(p)}));
    tables.push_back(std::move(t));
  }
  BENTO_ASSIGN_OR_RETURN(auto merged, col::ConcatTables(tables));
  return merged->column(0);
}

}  // namespace bento::kern
