#ifndef BENTO_KERNELS_COMPARE_H_
#define BENTO_KERNELS_COMPARE_H_

#include "kernels/common.h"

namespace bento::kern {

/// \brief values <op> literal, elementwise; null inputs yield null outputs.
/// Numeric scalars compare against numeric/timestamp columns; string scalars
/// against string/categorical columns.
Result<ArrayPtr> CompareScalar(const ArrayPtr& values, CompareOp op,
                               const Scalar& literal);

/// \brief Elementwise comparison of two equally-typed columns.
Result<ArrayPtr> CompareArrays(const ArrayPtr& left, CompareOp op,
                               const ArrayPtr& right);

/// \brief Three-valued logic on bool arrays (null propagates).
Result<ArrayPtr> BooleanAnd(const ArrayPtr& left, const ArrayPtr& right);
Result<ArrayPtr> BooleanOr(const ArrayPtr& left, const ArrayPtr& right);
Result<ArrayPtr> BooleanNot(const ArrayPtr& values);

}  // namespace bento::kern

#endif  // BENTO_KERNELS_COMPARE_H_
