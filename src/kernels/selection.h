#ifndef BENTO_KERNELS_SELECTION_H_
#define BENTO_KERNELS_SELECTION_H_

#include <cstdint>
#include <vector>

#include "kernels/common.h"

namespace bento::kern {

/// \brief Keeps rows where `mask` is true (null mask slots drop the row).
/// `mask` must be a kBool array of the same length.
Result<ArrayPtr> Filter(const ArrayPtr& values, const ArrayPtr& mask);
Result<TablePtr> FilterTable(const TablePtr& table, const ArrayPtr& mask);

/// \brief Gathers rows at `indices`; an index of -1 emits a null row
/// (used by left joins).
Result<ArrayPtr> Take(const ArrayPtr& values,
                      const std::vector<int64_t>& indices);
Result<TablePtr> TakeTable(const TablePtr& table,
                           const std::vector<int64_t>& indices);

}  // namespace bento::kern

#endif  // BENTO_KERNELS_SELECTION_H_
