#ifndef BENTO_KERNELS_SELECTION_H_
#define BENTO_KERNELS_SELECTION_H_

#include <cstdint>
#include <vector>

#include "kernels/common.h"
#include "sim/parallel.h"

namespace bento::kern {

/// \brief Keeps rows where `mask` is true (null mask slots drop the row).
/// `mask` must be a kBool array of the same length.
Result<ArrayPtr> Filter(const ArrayPtr& values, const ArrayPtr& mask);
Result<TablePtr> FilterTable(const TablePtr& table, const ArrayPtr& mask);

/// \brief Gathers rows at `indices`; an index of -1 emits a null row
/// (used by left joins).
Result<ArrayPtr> Take(const ArrayPtr& values,
                      const std::vector<int64_t>& indices);
Result<TablePtr> TakeTable(const TablePtr& table,
                           const std::vector<int64_t>& indices);

/// \brief Sized two-pass gather: output buffers are allocated to their exact
/// final size up front (prefix-summed byte totals for strings) and morsel
/// tasks copy disjoint output ranges — no growth-amortized builder appends.
/// Bit-identical to Take (including -1 -> null and the null/validity
/// layout); falls back to the serial builder path for small inputs. Used by
/// the parallel join/sort/dedup/group-by assembly stages; in kSimulated mode
/// the copy morsels run serially and earn makespan credit like any other
/// ParallelFor.
Result<ArrayPtr> TakeParallel(const ArrayPtr& values,
                              const std::vector<int64_t>& indices,
                              const sim::ParallelOptions& options = {});
Result<TablePtr> TakeTableParallel(const TablePtr& table,
                                   const std::vector<int64_t>& indices,
                                   const sim::ParallelOptions& options = {});

}  // namespace bento::kern

#endif  // BENTO_KERNELS_SELECTION_H_
