#include "bento/pipeline.h"

#include <cmath>

namespace bento::run {

using col::Scalar;
using col::TypeId;
using frame::Op;
using frame::OpKind;
using frame::Stage;
using kern::AggKind;
using kern::AggSpec;
using kern::SortKey;

std::vector<PipelineStep> Pipeline::StageSteps(Stage stage) const {
  std::vector<PipelineStep> out;
  for (const PipelineStep& step : steps) {
    if (step.stage == stage) out.push_back(step);
  }
  return out;
}

namespace {

Result<double> NumericField(const col::Table& table, int64_t row,
                            const std::string& name) {
  int c = table.schema()->IndexOf(name);
  if (c < 0) return Status::KeyError("row fn: no column '", name, "'");
  const col::Array& a = *table.column(c);
  if (a.IsNull(row)) return std::nan("");
  switch (a.type()) {
    case TypeId::kFloat64:
      return a.float64_data()[row];
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      return static_cast<double>(a.int64_data()[row]);
    case TypeId::kBool:
      return a.bool_data()[row] != 0 ? 1.0 : 0.0;
    default:
      return Status::TypeError("row fn: column '", name, "' is not numeric");
  }
}

Scalar MaybeDouble(double v) {
  return std::isnan(v) ? Scalar::Null() : Scalar::Double(v);
}

}  // namespace

Result<kern::RowFn> LookupRowFn(const std::string& name) {
  if (name == "bmi") {
    // weight[kg] / (height[cm] / 100)^2
    return kern::RowFn([](const col::Table& t, int64_t r) -> Result<Scalar> {
      BENTO_ASSIGN_OR_RETURN(double w, NumericField(t, r, "weight"));
      BENTO_ASSIGN_OR_RETURN(double h, NumericField(t, r, "height"));
      if (std::isnan(w) || std::isnan(h) || h <= 0) return Scalar::Null();
      const double meters = h / 100.0;
      return Scalar::Double(w / (meters * meters));
    });
  }
  if (name == "height_m") {
    return kern::RowFn([](const col::Table& t, int64_t r) -> Result<Scalar> {
      BENTO_ASSIGN_OR_RETURN(double h, NumericField(t, r, "height"));
      return MaybeDouble(h / 100.0);
    });
  }
  if (name == "payment_ratio") {
    // loan: yearly payment share of income.
    return kern::RowFn([](const col::Table& t, int64_t r) -> Result<Scalar> {
      BENTO_ASSIGN_OR_RETURN(double amount, NumericField(t, r, "loan_amnt"));
      BENTO_ASSIGN_OR_RETURN(double income, NumericField(t, r, "annual_inc"));
      if (std::isnan(amount) || std::isnan(income) || income <= 0) {
        return Scalar::Null();
      }
      return Scalar::Double(amount / income);
    });
  }
  if (name == "age_decade") {
    return kern::RowFn([](const col::Table& t, int64_t r) -> Result<Scalar> {
      BENTO_ASSIGN_OR_RETURN(double age, NumericField(t, r, "driver_age"));
      if (std::isnan(age)) return Scalar::Null();
      return Scalar::Int(static_cast<int64_t>(age / 10.0) * 10);
    });
  }
  if (name == "total_check") {
    // taxi: recompute total from parts and compare.
    return kern::RowFn([](const col::Table& t, int64_t r) -> Result<Scalar> {
      BENTO_ASSIGN_OR_RETURN(double fare, NumericField(t, r, "fare_amount"));
      BENTO_ASSIGN_OR_RETURN(double tip, NumericField(t, r, "tip_amount"));
      BENTO_ASSIGN_OR_RETURN(double tolls, NumericField(t, r, "tolls_amount"));
      BENTO_ASSIGN_OR_RETURN(double total, NumericField(t, r, "total_amount"));
      if (std::isnan(fare) || std::isnan(total)) return Scalar::Null();
      return Scalar::Double(total - (fare + tip + tolls));
    });
  }
  return Status::KeyError("unknown row function '", name, "'");
}

namespace {

Result<Op> NamedApplyRow(const std::string& fn_name,
                         const std::string& new_name, TypeId out_type) {
  BENTO_ASSIGN_OR_RETURN(auto fn, LookupRowFn(fn_name));
  Op op = Op::ApplyRow(new_name, fn, out_type);
  op.text = fn_name;  // keeps the registered name for JSON round-trips
  return op;
}

Result<Pipeline> AthletePipeline() {
  Pipeline p;
  p.dataset = "athlete";
  auto add = [&](Stage stage, Op op, bool carry = true) {
    p.steps.push_back(PipelineStep{stage, std::move(op), carry});
  };
  // EDA — isna / outlier / srchptn / sort dominate (95% of EDA time).
  add(Stage::kEDA, Op::IsNa());
  add(Stage::kEDA, Op::LocateOutliers("age"));
  add(Stage::kEDA, Op::SearchPattern("event", "ing"));
  add(Stage::kEDA, Op::SortValues({SortKey{"year", false}}));
  add(Stage::kEDA, Op::GetColumns());
  add(Stage::kEDA, Op::GetDtypes());
  add(Stage::kEDA, Op::Describe());
  add(Stage::kEDA, Op::Query("height > 120"));
  // DT
  add(Stage::kDT, Op::Cast("year", TypeId::kFloat64));
  add(Stage::kDT, Op::Pivot("season", "sport", "weight", AggKind::kMean),
      /*carry=*/false);
  add(Stage::kDT, Op::ApplyExpr("bmi", "weight / ((height / 100) ** 2)"));
  {
    Op merge = Op::Merge(nullptr, "noc", "noc", kern::JoinType::kLeft);
    merge.text = "regions";  // resolved by the runner's table registry
    add(Stage::kDT, std::move(merge));
  }
  add(Stage::kDT, Op::GetDummies("season"));
  add(Stage::kDT, Op::CatCodes("medal"));
  add(Stage::kDT,
      Op::GroupByAgg({"team"}, {AggSpec{"age", AggKind::kMean, ""}}),
      /*carry=*/false);
  add(Stage::kDT, Op::DropColumns({"games"}));
  add(Stage::kDT, Op::Rename({{"noc", "country_code"}}));
  // DC — dedup accounts for ~70% of the stage.
  add(Stage::kDC, Op::DropNa({"age"}));
  add(Stage::kDC, Op::StrLower("event"));
  add(Stage::kDC, Op::Round("height", 1));
  add(Stage::kDC, Op::DropDuplicates());
  add(Stage::kDC, Op::FillNaMean("weight"));
  add(Stage::kDC, Op::Replace("sex", Scalar::Str("M"), Scalar::Str("Male")));
  {
    BENTO_ASSIGN_OR_RETURN(auto op, NamedApplyRow("height_m", "height_m", TypeId::kFloat64));
    add(Stage::kDC, std::move(op));
  }
  return p;
}

Result<Pipeline> LoanPipeline() {
  Pipeline p;
  p.dataset = "loan";
  auto add = [&](Stage stage, Op op, bool carry = true) {
    p.steps.push_back(PipelineStep{stage, std::move(op), carry});
  };
  add(Stage::kEDA, Op::IsNa());
  add(Stage::kEDA, Op::LocateOutliers("annual_inc"));
  add(Stage::kEDA, Op::SearchPattern("desc", "loan"));
  add(Stage::kEDA, Op::SortValues({SortKey{"int_rate", true}}));
  add(Stage::kEDA, Op::GetColumns());
  add(Stage::kEDA, Op::GetDtypes());
  add(Stage::kEDA, Op::Describe());
  add(Stage::kEDA, Op::Query("loan_amnt > 1000"));
  add(Stage::kDT, Op::Cast("loan_amnt", TypeId::kInt64));
  add(Stage::kDT, Op::Pivot("grade", "purpose", "loan_amnt", AggKind::kMean),
      /*carry=*/false);
  add(Stage::kDT, Op::ApplyExpr("installment",
                                "loan_amnt * (int_rate / 1200)"));
  add(Stage::kDT, Op::GetDummies("purpose"));
  add(Stage::kDT, Op::CatCodes("grade"));
  add(Stage::kDT,
      Op::GroupByAgg({"sub_grade"},
                     {AggSpec{"int_rate", AggKind::kMean, ""},
                      AggSpec{"loan_amnt", AggKind::kSum, ""}}),
      /*carry=*/false);
  add(Stage::kDT, Op::ToDatetime("issue_d"));
  add(Stage::kDT, Op::DropColumns({"num_0", "num_1"}));
  add(Stage::kDT, Op::Rename({{"dti", "debt_to_income"}}));
  add(Stage::kDC, Op::DropNa({"annual_inc"}));
  add(Stage::kDC, Op::StrLower("emp_title"));
  add(Stage::kDC, Op::Round("int_rate", 2));
  add(Stage::kDC, Op::DropDuplicates({"emp_title", "sub_grade", "term"}));
  add(Stage::kDC, Op::FillNaMean("debt_to_income"));
  add(Stage::kDC, Op::Replace("term", Scalar::Str(" 36 months"),
                              Scalar::Str("36")));
  {
    BENTO_ASSIGN_OR_RETURN(auto op, NamedApplyRow("payment_ratio", "payment_ratio", TypeId::kFloat64));
    add(Stage::kDC, std::move(op));
  }
  return p;
}

Result<Pipeline> PatrolPipeline() {
  Pipeline p;
  p.dataset = "patrol";
  auto add = [&](Stage stage, Op op, bool carry = true) {
    p.steps.push_back(PipelineStep{stage, std::move(op), carry});
  };
  add(Stage::kEDA, Op::IsNa());
  add(Stage::kEDA, Op::LocateOutliers("driver_age"));
  add(Stage::kEDA, Op::SearchPattern("violation_raw", "Spe"));
  add(Stage::kEDA, Op::SortValues({SortKey{"stop_date", true}}));
  add(Stage::kEDA, Op::GetColumns());
  add(Stage::kEDA, Op::GetDtypes());
  add(Stage::kEDA, Op::Describe());
  add(Stage::kEDA, Op::Query("driver_age >= 16"));
  add(Stage::kDT, Op::Cast("officer_id", TypeId::kFloat64));
  add(Stage::kDT, Op::ApplyExpr("fine_adj", "fillna(fine, 0.0) * 1.07"));
  add(Stage::kDT, Op::GetDummies("stop_outcome"));
  add(Stage::kDT, Op::CatCodes("driver_race"));
  add(Stage::kDT,
      Op::GroupByAgg({"violation"},
                     {AggSpec{"driver_age", AggKind::kCount, ""}}),
      /*carry=*/false);
  add(Stage::kDT, Op::DropColumns({"ann_0", "ann_1"}));
  add(Stage::kDT, Op::Rename({{"county_name", "county"}}));
  // DC — the paper highlights dropna + chdate as the Patrol DC pair.
  add(Stage::kDC, Op::DropNa({"driver_gender"}));
  add(Stage::kDC, Op::ToDatetime("stop_date"));
  add(Stage::kDC, Op::StrLower("county"));
  add(Stage::kDC, Op::Round("fine", 0));
  add(Stage::kDC, Op::FillNaMean("fine"));
  add(Stage::kDC, Op::Replace("driver_gender", Scalar::Str("M"),
                              Scalar::Str("male")));
  {
    BENTO_ASSIGN_OR_RETURN(auto op, NamedApplyRow("age_decade", "age_decade", TypeId::kInt64));
    add(Stage::kDC, std::move(op));
  }
  return p;
}

Result<Pipeline> TaxiPipeline() {
  Pipeline p;
  p.dataset = "taxi";
  auto add = [&](Stage stage, Op op, bool carry = true) {
    p.steps.push_back(PipelineStep{stage, std::move(op), carry});
  };
  add(Stage::kEDA, Op::IsNa());
  add(Stage::kEDA, Op::LocateOutliers("trip_duration"));
  add(Stage::kEDA, Op::SearchPattern("pickup_datetime", "2015-07"));
  add(Stage::kEDA, Op::SortValues({SortKey{"pickup_datetime", true}}));
  add(Stage::kEDA, Op::GetColumns());
  add(Stage::kEDA, Op::GetDtypes());
  add(Stage::kEDA, Op::Describe());
  add(Stage::kEDA, Op::Query("passenger_count <= 6"));
  add(Stage::kDT, Op::Cast("passenger_count", TypeId::kFloat64));
  add(Stage::kDT,
      Op::ApplyExpr("speed_kmh",
                    "trip_distance / ((trip_duration + 1) / 3600)"));
  add(Stage::kDT, Op::GetDummies("store_and_fwd_flag"));
  add(Stage::kDT,
      Op::GroupByAgg({"vendor_id"},
                     {AggSpec{"fare_amount", AggKind::kMean, ""},
                      AggSpec{"tip_amount", AggKind::kMax, ""}}),
      /*carry=*/false);
  add(Stage::kDT, Op::ToDatetime("pickup_datetime"));
  add(Stage::kDT, Op::DropColumns({"extra"}));
  add(Stage::kDT, Op::Rename({{"rate_code", "rate"}}));
  add(Stage::kDC, Op::DropNa());
  add(Stage::kDC, Op::Round("fare_amount", 1));
  add(Stage::kDC, Op::FillNa("tip_amount", Scalar::Double(0.0)));
  add(Stage::kDC, Op::Replace("vendor_id", Scalar::Int(2), Scalar::Int(20)));
  {
    BENTO_ASSIGN_OR_RETURN(auto op, NamedApplyRow("total_check", "total_check", TypeId::kFloat64));
    add(Stage::kDC, std::move(op));
  }
  return p;
}

}  // namespace

Result<Pipeline> PipelineFor(const std::string& dataset) {
  if (dataset == "athlete") return AthletePipeline();
  if (dataset == "loan") return LoanPipeline();
  if (dataset == "patrol") return PatrolPipeline();
  if (dataset == "taxi") return TaxiPipeline();
  return Status::KeyError("no pipeline for dataset '", dataset, "'");
}

// ---------------------------------------------------------------------------
// JSON round-trip.
// ---------------------------------------------------------------------------

namespace {

JsonValue ScalarToJson(const Scalar& s) {
  JsonValue v = JsonValue::Object();
  switch (s.kind()) {
    case Scalar::Kind::kNull:
      v.Set("kind", JsonValue::Str("null"));
      break;
    case Scalar::Kind::kInt:
      v.Set("kind", JsonValue::Str("int"));
      v.Set("value", JsonValue::Int(s.int_value()));
      break;
    case Scalar::Kind::kDouble:
      v.Set("kind", JsonValue::Str("double"));
      v.Set("value", JsonValue::Number(s.double_value()));
      break;
    case Scalar::Kind::kBool:
      v.Set("kind", JsonValue::Str("bool"));
      v.Set("value", JsonValue::Bool(s.bool_value()));
      break;
    case Scalar::Kind::kString:
      v.Set("kind", JsonValue::Str("string"));
      v.Set("value", JsonValue::Str(s.string_value()));
      break;
    case Scalar::Kind::kTimestamp:
      v.Set("kind", JsonValue::Str("timestamp"));
      v.Set("value", JsonValue::Int(s.int_value()));
      break;
  }
  return v;
}

Result<Scalar> ScalarFromJson(const JsonValue& v) {
  const std::string kind = v.GetString("kind", "null");
  if (kind == "null") return Scalar::Null();
  if (kind == "int") return Scalar::Int(v.GetInt("value"));
  if (kind == "double") return Scalar::Double(v.GetNumber("value"));
  if (kind == "bool") return Scalar::Bool(v.GetBool("value"));
  if (kind == "string") return Scalar::Str(v.GetString("value"));
  if (kind == "timestamp") return Scalar::Timestamp(v.GetInt("value"));
  return Status::Invalid("bad scalar kind '", kind, "'");
}

Result<TypeId> TypeFromName(const std::string& name) {
  for (TypeId t : {TypeId::kInt64, TypeId::kFloat64, TypeId::kBool,
                   TypeId::kString, TypeId::kTimestamp, TypeId::kCategorical}) {
    if (name == col::TypeName(t)) return t;
  }
  return Status::Invalid("unknown type '", name, "'");
}

Result<AggKind> AggFromName(const std::string& name) {
  for (AggKind k : {AggKind::kSum, AggKind::kMean, AggKind::kMin,
                    AggKind::kMax, AggKind::kCount, AggKind::kStd}) {
    if (name == kern::AggName(k)) return k;
  }
  return Status::Invalid("unknown aggregation '", name, "'");
}

Result<Stage> StageFromName(const std::string& name) {
  if (name == "I/O") return Stage::kIO;
  if (name == "EDA") return Stage::kEDA;
  if (name == "DT") return Stage::kDT;
  if (name == "DC") return Stage::kDC;
  return Status::Invalid("unknown stage '", name, "'");
}

JsonValue StringsToJson(const std::vector<std::string>& values) {
  JsonValue arr = JsonValue::Array();
  for (const std::string& v : values) arr.Append(JsonValue::Str(v));
  return arr;
}

std::vector<std::string> StringsFromJson(const JsonValue& arr) {
  std::vector<std::string> out;
  for (const JsonValue& v : arr.items()) out.push_back(v.string_value());
  return out;
}

JsonValue OpToJson(const Op& op) {
  JsonValue v = JsonValue::Object();
  v.Set("op", JsonValue::Str(frame::OpKindName(op.kind)));
  if (!op.column.empty()) v.Set("column", JsonValue::Str(op.column));
  if (!op.columns.empty()) v.Set("columns", StringsToJson(op.columns));
  if (!op.text.empty()) v.Set("text", JsonValue::Str(op.text));
  if (!op.new_name.empty()) v.Set("new_name", JsonValue::Str(op.new_name));
  if (!op.renames.empty()) {
    JsonValue arr = JsonValue::Array();
    for (const auto& [from, to] : op.renames) {
      JsonValue pair = JsonValue::Object();
      pair.Set("from", JsonValue::Str(from));
      pair.Set("to", JsonValue::Str(to));
      arr.Append(std::move(pair));
    }
    v.Set("renames", std::move(arr));
  }
  if (!op.sort_keys.empty()) {
    JsonValue arr = JsonValue::Array();
    for (const SortKey& key : op.sort_keys) {
      JsonValue kj = JsonValue::Object();
      kj.Set("column", JsonValue::Str(key.column));
      kj.Set("ascending", JsonValue::Bool(key.ascending));
      arr.Append(std::move(kj));
    }
    v.Set("sort_keys", std::move(arr));
  }
  if (!op.aggs.empty()) {
    JsonValue arr = JsonValue::Array();
    for (const AggSpec& agg : op.aggs) {
      JsonValue aj = JsonValue::Object();
      aj.Set("column", JsonValue::Str(agg.column));
      aj.Set("agg", JsonValue::Str(kern::AggName(agg.kind)));
      if (!agg.output_name.empty()) {
        aj.Set("as", JsonValue::Str(agg.output_name));
      }
      arr.Append(std::move(aj));
    }
    v.Set("aggs", std::move(arr));
  }
  switch (op.kind) {
    case OpKind::kLocateOutliers:
      v.Set("lower_q", JsonValue::Number(op.lower_q));
      v.Set("upper_q", JsonValue::Number(op.upper_q));
      break;
    case OpKind::kCast:
      v.Set("type", JsonValue::Str(col::TypeName(op.type)));
      break;
    case OpKind::kPivot:
      v.Set("index", JsonValue::Str(op.pivot_index));
      v.Set("pivot_columns", JsonValue::Str(op.pivot_columns));
      v.Set("values", JsonValue::Str(op.pivot_values));
      v.Set("agg", JsonValue::Str(kern::AggName(op.pivot_agg)));
      break;
    case OpKind::kMerge:
      v.Set("left_key", JsonValue::Str(op.left_key));
      v.Set("right_key", JsonValue::Str(op.right_key));
      v.Set("how", JsonValue::Str(op.join_type == kern::JoinType::kLeft
                                      ? "left"
                                      : "inner"));
      break;
    case OpKind::kRound:
      v.Set("decimals", JsonValue::Int(op.decimals));
      break;
    case OpKind::kFillNa:
      if (op.fill_with_mean) {
        v.Set("strategy", JsonValue::Str("mean"));
      } else {
        v.Set("value", ScalarToJson(op.scalar_a));
      }
      break;
    case OpKind::kReplace:
      v.Set("from", ScalarToJson(op.scalar_a));
      v.Set("to", ScalarToJson(op.scalar_b));
      break;
    case OpKind::kApplyRow:
      // `text` carries the registered row-function name.
      v.Set("out_type", JsonValue::Str(col::TypeName(op.row_fn_type)));
      break;
    default:
      break;
  }
  return v;
}

Result<Op> OpFromJson(const JsonValue& v) {
  const std::string name = v.GetString("op");
  Op op;
  bool known = false;
  for (int k = 0; k <= static_cast<int>(OpKind::kApplyRow); ++k) {
    if (name == frame::OpKindName(static_cast<OpKind>(k))) {
      op.kind = static_cast<OpKind>(k);
      known = true;
      break;
    }
  }
  if (!known) return Status::Invalid("unknown op '", name, "'");

  op.column = v.GetString("column");
  op.columns = StringsFromJson(v.Get("columns"));
  op.text = v.GetString("text");
  op.new_name = v.GetString("new_name");
  for (const JsonValue& pair : v.Get("renames").items()) {
    op.renames.emplace_back(pair.GetString("from"), pair.GetString("to"));
  }
  for (const JsonValue& kj : v.Get("sort_keys").items()) {
    op.sort_keys.push_back(
        SortKey{kj.GetString("column"), kj.GetBool("ascending", true)});
  }
  for (const JsonValue& aj : v.Get("aggs").items()) {
    BENTO_ASSIGN_OR_RETURN(AggKind kind, AggFromName(aj.GetString("agg")));
    op.aggs.push_back(AggSpec{aj.GetString("column"), kind,
                              aj.GetString("as")});
  }
  switch (op.kind) {
    case OpKind::kLocateOutliers:
      op.lower_q = v.GetNumber("lower_q", 0.01);
      op.upper_q = v.GetNumber("upper_q", 0.99);
      break;
    case OpKind::kCast: {
      BENTO_ASSIGN_OR_RETURN(op.type, TypeFromName(v.GetString("type")));
      break;
    }
    case OpKind::kPivot: {
      op.pivot_index = v.GetString("index");
      op.pivot_columns = v.GetString("pivot_columns");
      op.pivot_values = v.GetString("values");
      BENTO_ASSIGN_OR_RETURN(op.pivot_agg,
                             AggFromName(v.GetString("agg", "mean")));
      break;
    }
    case OpKind::kMerge:
      op.left_key = v.GetString("left_key");
      op.right_key = v.GetString("right_key");
      op.join_type = v.GetString("how", "inner") == "left"
                         ? kern::JoinType::kLeft
                         : kern::JoinType::kInner;
      break;
    case OpKind::kRound:
      op.decimals = static_cast<int>(v.GetInt("decimals", 2));
      break;
    case OpKind::kFillNa:
      if (v.GetString("strategy") == "mean") {
        op.fill_with_mean = true;
      } else {
        BENTO_ASSIGN_OR_RETURN(op.scalar_a, ScalarFromJson(v.Get("value")));
      }
      break;
    case OpKind::kReplace: {
      BENTO_ASSIGN_OR_RETURN(op.scalar_a, ScalarFromJson(v.Get("from")));
      BENTO_ASSIGN_OR_RETURN(op.scalar_b, ScalarFromJson(v.Get("to")));
      break;
    }
    case OpKind::kApplyRow: {
      BENTO_ASSIGN_OR_RETURN(op.row_fn, LookupRowFn(op.text));
      BENTO_ASSIGN_OR_RETURN(op.row_fn_type,
                             TypeFromName(v.GetString("out_type", "float64")));
      break;
    }
    default:
      break;
  }
  return op;
}

}  // namespace

Result<Pipeline> PipelineFromJson(const JsonValue& spec) {
  Pipeline p;
  p.dataset = spec.GetString("dataset");
  for (const JsonValue& sj : spec.Get("steps").items()) {
    PipelineStep step;
    BENTO_ASSIGN_OR_RETURN(step.stage, StageFromName(sj.GetString("stage")));
    BENTO_ASSIGN_OR_RETURN(step.op, OpFromJson(sj));
    step.carry = sj.GetBool("carry", true);
    p.steps.push_back(std::move(step));
  }
  return p;
}

JsonValue PipelineToJson(const Pipeline& pipeline) {
  JsonValue spec = JsonValue::Object();
  spec.Set("dataset", JsonValue::Str(pipeline.dataset));
  JsonValue steps = JsonValue::Array();
  for (const PipelineStep& step : pipeline.steps) {
    JsonValue sj = OpToJson(step.op);
    sj.Set("stage", JsonValue::Str(frame::StageName(step.stage)));
    if (!step.carry) sj.Set("carry", JsonValue::Bool(false));
    steps.Append(std::move(sj));
  }
  spec.Set("steps", std::move(steps));
  return spec;
}

}  // namespace bento::run
