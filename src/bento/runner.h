#ifndef BENTO_BENTO_RUNNER_H_
#define BENTO_BENTO_RUNNER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bento/pipeline.h"
#include "frame/engine.h"
#include "sim/machine.h"
#include "sim/parallel.h"

namespace bento::run {

/// \brief The three measurement settings of the paper (Section III-C).
enum class RunMode {
  kFunctionCore,   ///< force execution after every preparator
  kPipelineStage,  ///< force at stage boundaries (lazy optimizes per stage)
  kPipelineFull,   ///< force once at the end of the pipeline
};

struct RunConfig {
  std::string engine_id;
  sim::MachineSpec machine = sim::MachineSpec::EvaluationHost();
  RunMode mode = RunMode::kPipelineStage;
  /// Measure read from BCF instead of CSV (Fig. 5's Parquet series).
  bool use_bcf_source = false;
  /// When non-empty, the run collects an obs trace and writes it here (the
  /// BENTO_TRACE environment variable provides a process-wide default).
  std::string trace_path;
  /// Collect per-span resource/energy rollups and print the report table
  /// after the run (BENTO_REPORT provides a process-wide default; inert when
  /// an enclosing ResourceReportScope — a bench harness — already reports).
  bool collect_resources = false;
  /// Overrides the session's execution mode for this run (kReal engages the
  /// thread pool and the morsel-driven pipeline; kSimulated keeps the
  /// virtual cost model). Unset keeps the BENTO_EXECUTION default.
  std::optional<sim::ExecutionMode> execution_mode;
};

struct OpTiming {
  std::string op;
  frame::Stage stage;
  double seconds = 0.0;
  /// Host-pool high water during this preparator (function-core mode only;
  /// the pool's peak is reset before each op).
  uint64_t peak_bytes = 0;
};

struct RunReport {
  Status status;  ///< first failure (OoM on undersized machines, ...)
  double read_seconds = 0.0;
  std::map<frame::Stage, double> stage_seconds;
  double total_seconds = 0.0;   ///< read + all stages
  std::vector<OpTiming> ops;    ///< per-preparator (function-core mode)
  uint64_t peak_host_bytes = 0;
  uint64_t peak_device_bytes = 0;  ///< 0 without a GPU device pool
};

/// \brief Generates datasets on demand, caches them as CSV/BCF files, and
/// executes pipelines under simulated machines.
class Runner {
 public:
  /// Files are cached under `data_dir` (created if missing).
  explicit Runner(std::string data_dir, double scale, uint64_t seed = 42);

  double scale() const { return scale_; }

  /// Path of the dataset's CSV at this runner's scale; generated on first
  /// use. `sample` further subsamples rows (Fig. 8 / Table V sweeps).
  Result<std::string> EnsureCsv(const std::string& dataset,
                                double sample = 1.0);
  Result<std::string> EnsureBcf(const std::string& dataset,
                                double sample = 1.0);

  /// Runs `pipeline` on `dataset` under `config`. Machine RAM budgets are
  /// scaled by this runner's dataset scale so OoM crossovers land at the
  /// same sample fractions as at full size.
  Result<RunReport> Run(const RunConfig& config, const Pipeline& pipeline,
                        const std::string& dataset, double sample = 1.0);

  /// The machine spec actually used: RAM scaled, GPU attached for cudf.
  sim::MachineSpec EffectiveMachine(const RunConfig& config) const;

 private:
  Result<col::TablePtr> MaterializeAux(const std::string& name);

  std::string data_dir_;
  double scale_;
  uint64_t seed_;
};

}  // namespace bento::run

#endif  // BENTO_BENTO_RUNNER_H_
