#include "bento/report.h"

#include <algorithm>
#include <cstdio>

#include "frame/capabilities.h"
#include "util/string_util.h"

namespace bento::run {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto emit = [&](const std::vector<std::string>& row, std::string* out) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out->append(cell);
      out->append(widths[c] - cell.size() + 2, ' ');
    }
    while (!out->empty() && out->back() == ' ') out->pop_back();
    out->push_back('\n');
  };

  std::string out;
  emit(header_, &out);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out.push_back('\n');
  for (const auto& row : rows_) emit(row, &out);
  return out;
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  if (seconds < 0) return "n/a";
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.0fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  } else if (seconds < 100.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fs", seconds);
  }
  return buf;
}

std::string FormatSpeedup(double speedup) {
  char buf[32];
  if (speedup >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0fx", speedup);
  } else if (speedup >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fx", speedup);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fx", speedup);
  }
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  if (bytes == 0) return "-";
  return HumanBytes(bytes);
}

std::string RunReportText(const RunReport& report) {
  std::string out;
  out += "status: " + report.status.ToString() + "\n";

  TextTable stages({"stage", "time"});
  for (const auto& [stage, seconds] : report.stage_seconds) {
    stages.AddRow({frame::StageName(stage), FormatSeconds(seconds)});
  }
  stages.AddRow({"total", FormatSeconds(report.total_seconds)});
  out += stages.ToString();

  out += "peak host: " + FormatBytes(report.peak_host_bytes) +
         "  peak device: " + FormatBytes(report.peak_device_bytes) + "\n";

  if (!report.ops.empty()) {
    TextTable ops({"op", "stage", "time", "peak"});
    for (const OpTiming& t : report.ops) {
      ops.AddRow({t.op, frame::StageName(t.stage), FormatSeconds(t.seconds),
                  FormatBytes(t.peak_bytes)});
    }
    out += ops.ToString();
  }
  return out;
}

}  // namespace bento::run
