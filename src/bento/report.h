#ifndef BENTO_BENTO_REPORT_H_
#define BENTO_BENTO_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bento/runner.h"

namespace bento::run {

/// \brief Plain-text aligned table used by the benchmark binaries to print
/// the paper's tables and figure series.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief "12.3ms" / "4.56s" style duration, or "OoM"/"n/a" markers.
std::string FormatSeconds(double seconds);

/// \brief Speedup "12.5x" / "0.08x" formatting.
std::string FormatSpeedup(double speedup);

/// \brief "1.5 GiB" style byte counts ("-" for zero, which means the run
/// never touched the corresponding pool).
std::string FormatBytes(uint64_t bytes);

/// \brief Renders a RunReport as an aligned text table: the stage rows with
/// times, peak-memory lines, and — in function-core mode — one row per
/// preparator including its peak bytes.
std::string RunReportText(const RunReport& report);

}  // namespace bento::run

#endif  // BENTO_BENTO_REPORT_H_
