#ifndef BENTO_BENTO_REPORT_H_
#define BENTO_BENTO_REPORT_H_

#include <string>
#include <vector>

namespace bento::run {

/// \brief Plain-text aligned table used by the benchmark binaries to print
/// the paper's tables and figure series.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief "12.3ms" / "4.56s" style duration, or "OoM"/"n/a" markers.
std::string FormatSeconds(double seconds);

/// \brief Speedup "12.5x" / "0.08x" formatting.
std::string FormatSpeedup(double speedup);

}  // namespace bento::run

#endif  // BENTO_BENTO_REPORT_H_
