#include "bento/runner.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <optional>

#include "datagen/datasets.h"
#include "io/bcf.h"
#include "io/csv.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace bento::run {

using frame::Op;
using frame::OpKind;
using frame::Stage;

namespace {

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::string SampleTag(double sample) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d", static_cast<int>(sample * 1000));
  return buf;
}

}  // namespace

Runner::Runner(std::string data_dir, double scale, uint64_t seed)
    : data_dir_(std::move(data_dir)), scale_(scale), seed_(seed) {
  ::mkdir(data_dir_.c_str(), 0755);
}

Result<std::string> Runner::EnsureCsv(const std::string& dataset,
                                      double sample) {
  std::string path =
      data_dir_ + "/" + dataset + "_" + SampleTag(sample) + ".csv";
  if (FileExists(path)) return path;
  BENTO_ASSIGN_OR_RETURN(auto table,
                         gen::GenerateDataset(dataset, scale_ * sample, seed_));
  BENTO_RETURN_NOT_OK(io::WriteCsv(table, path));
  return path;
}

Result<std::string> Runner::EnsureBcf(const std::string& dataset,
                                      double sample) {
  std::string path =
      data_dir_ + "/" + dataset + "_" + SampleTag(sample) + ".bcf";
  if (FileExists(path)) return path;
  BENTO_ASSIGN_OR_RETURN(auto table,
                         gen::GenerateDataset(dataset, scale_ * sample, seed_));
  // Scale the row-group size with the dataset so a scaled run sees the same
  // group structure (groups per file, bytes per group relative to the RAM
  // budget) as the full-size run. An unscaled 64 Ki group would swallow a
  // 0.1%-scale dataset whole and decode as one frame-sized page.
  io::BcfWriteOptions wopts;
  wopts.row_group_rows = std::max<int64_t>(
      2048, static_cast<int64_t>(64.0 * 1024.0 * scale_));
  BENTO_RETURN_NOT_OK(io::WriteBcf(table, path, wopts));
  return path;
}

sim::MachineSpec Runner::EffectiveMachine(const RunConfig& config) const {
  // RAM (and VRAM) budgets shrink with the dataset scale so that the
  // memory-pressure crossovers of Table V appear at the same sample
  // fractions they do at full size.
  sim::MachineSpec machine = config.machine.Scaled(scale_);
  if (config.engine_id == "cudf" && !machine.gpu.has_value()) {
    sim::GpuSpec gpu;  // the paper's T4: 16 GB device memory
    gpu.vram_bytes = static_cast<uint64_t>(
        static_cast<double>(gpu.vram_bytes) * scale_);
    machine.gpu = gpu;
  }
  return machine;
}

Result<col::TablePtr> Runner::MaterializeAux(const std::string& name) {
  if (name == "regions") return gen::GenerateRegionsTable(seed_);
  return Status::KeyError("unknown auxiliary table '", name, "'");
}

Result<RunReport> Runner::Run(const RunConfig& config, const Pipeline& pipeline,
                              const std::string& dataset, double sample) {
  RunReport report;
  BENTO_ASSIGN_OR_RETURN(auto engine, frame::CreateEngine(config.engine_id));

  std::string source_path;
  if (config.use_bcf_source) {
    BENTO_ASSIGN_OR_RETURN(source_path, EnsureBcf(dataset, sample));
  } else {
    BENTO_ASSIGN_OR_RETURN(source_path, EnsureCsv(dataset, sample));
  }

  sim::Session session(EffectiveMachine(config));
  session.set_isolated_measurement(config.mode == RunMode::kFunctionCore);
  if (config.execution_mode.has_value()) {
    session.set_execution_mode(*config.execution_mode);
  }

  // Collect a trace when the config or BENTO_TRACE asks for one; inert when
  // an enclosing scope (a bench harness tracing many runs) already owns it.
  obs::TraceEnvScope trace_scope(config.trace_path);
  // Per-run resource/energy report; also inert under an enclosing reporting
  // scope, which then aggregates this run into its own table.
  obs::ResourceReportScope report_scope(config.collect_resources);
  // Label rollup rows with this run's identity so a reporting harness that
  // spans many runs can split its table by dataset × engine.
  std::optional<obs::ResourceContextScope> resource_context;
  if (obs::ResourceSamplingEnabled()) {
    resource_context.emplace(dataset + "/" + config.engine_id);
  }

  // Function-core runs report a per-op peak, which requires resetting the
  // pool watermark; the run-wide peak is kept as a running maximum.
  const bool per_op_peaks = config.mode == RunMode::kFunctionCore;
  uint64_t host_peak_hwm = 0;

  // --- I/O stage: ingest ---
  frame::DataFrame::Ptr frame;
  {
    BENTO_TRACE_SPAN(kStage, "stage.I/O");
    if (per_op_peaks) session.host_pool()->ResetPeak();
    sim::VirtualTimer timer;
    auto read = config.use_bcf_source ? engine->ReadBcf(source_path)
                                      : engine->ReadCsv(source_path, {});
    if (!read.ok()) {
      report.status = read.status();
      return report;
    }
    frame = read.MoveValueUnsafe();
    if (config.mode != RunMode::kPipelineFull) {
      // The paper treats I/O as its own stage: in function-core and
      // per-stage modes the frame is materialized here, so lazy engines'
      // scans are charged to I/O, not to the first forced preparator.
      // Full-pipeline mode leaves the scan lazy (whole-plan streaming).
      Status st = frame->Collect().status();
      if (!st.ok()) {
        report.status = st;
        report.read_seconds = timer.Elapsed();
        return report;
      }
    }
    report.read_seconds = timer.Elapsed();
  }
  if (per_op_peaks) {
    host_peak_hwm = std::max(host_peak_hwm, session.host_pool()->peak_bytes());
  }
  report.stage_seconds[Stage::kIO] = report.read_seconds;

  // Full-pipeline mode with a lazy engine: intermediate actions and
  // side results build lazy objects that are never forced (the paper's
  // lazy-evaluation benefit — unnecessary materializations are skipped);
  // only the final chain executes.
  const bool lazy_full = config.mode == RunMode::kPipelineFull &&
                         engine->info().lazy_evaluation;

  // --- pipeline stages ---
  Stage current_stage = Stage::kEDA;
  sim::VirtualTimer stage_timer;
  bool stage_open = false;
  std::optional<obs::TraceSpan> stage_span;

  auto close_stage = [&](Stage stage) -> Status {
    if (!stage_open) return Status::OK();
    if (config.mode == RunMode::kPipelineStage) {
      // Force pending lazy work at the stage boundary.
      BENTO_RETURN_NOT_OK(frame->Collect().status());
    }
    report.stage_seconds[stage] += stage_timer.Elapsed();
    stage_open = false;
    stage_span.reset();
    return Status::OK();
  };

  Status failure;
  for (const PipelineStep& step : pipeline.steps) {
    if (stage_open && step.stage != current_stage) {
      failure = close_stage(current_stage);
      if (!failure.ok()) break;
    }
    if (!stage_open) {
      current_stage = step.stage;
      stage_timer = sim::VirtualTimer();
      stage_open = true;
      stage_span.emplace(
          obs::Category::kStage,
          obs::TracingEnabled()
              ? std::string("stage.") + frame::StageName(step.stage)
              : std::string());
    }

    // Resolve named merge right-hand sides through the aux registry.
    Op op = step.op;
    if (op.kind == OpKind::kMerge && op.other == nullptr) {
      auto aux = MaterializeAux(op.text);
      if (!aux.ok()) {
        failure = aux.status();
        break;
      }
      auto right = engine->FromTable(aux.MoveValueUnsafe());
      if (!right.ok()) {
        failure = right.status();
        break;
      }
      op.other = right.MoveValueUnsafe();
    }

    if (per_op_peaks) session.host_pool()->ResetPeak();
    sim::VirtualTimer op_timer;
    Status op_status;
    {
      BENTO_TRACE_SPAN_DYN(kPreparator, frame::OpKindName(op.kind));
      if (frame::IsAction(op.kind)) {
        // Lazy full-pipeline runs only *declare* exploratory actions.
        if (!lazy_full) op_status = frame->RunAction(op).status();
      } else {
        auto applied = frame->Apply(op);
        if (applied.ok()) {
          frame::DataFrame::Ptr result = applied.MoveValueUnsafe();
          if (config.mode == RunMode::kFunctionCore ||
              (!step.carry && !lazy_full)) {
            // Function-core forces every preparator; side outputs (carry ==
            // false) are notebook actions and force immediately too — except
            // under lazy full-pipeline semantics, where they stay unevaluated.
            op_status = result->Collect().status();
          }
          if (op_status.ok() && step.carry) frame = std::move(result);
        } else {
          op_status = applied.status();
        }
      }
    }
    if (config.mode == RunMode::kFunctionCore) {
      const uint64_t op_peak = session.host_pool()->peak_bytes();
      host_peak_hwm = std::max(host_peak_hwm, op_peak);
      report.ops.push_back(OpTiming{frame::OpKindName(op.kind), step.stage,
                                    op_timer.Elapsed(), op_peak});
    }
    if (!op_status.ok()) {
      failure = op_status;
      break;
    }
  }

  if (failure.ok() && stage_open) failure = close_stage(current_stage);
  if (failure.ok()) {
    // Full-pipeline mode materializes once, at the very end.
    sim::VirtualTimer final_timer;
    failure = frame->Collect().status();
    report.stage_seconds[current_stage] += final_timer.Elapsed();
  }

  report.status = failure;
  report.total_seconds = report.read_seconds;
  for (const auto& [stage, seconds] : report.stage_seconds) {
    if (stage != Stage::kIO) report.total_seconds += seconds;
  }
  report.peak_host_bytes = per_op_peaks
                               ? std::max(host_peak_hwm,
                                          session.host_pool()->peak_bytes())
                               : session.host_pool()->peak_bytes();
  if (session.device_pool() != nullptr) {
    report.peak_device_bytes = session.device_pool()->peak_bytes();
  }
  return report;
}

}  // namespace bento::run
