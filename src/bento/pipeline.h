#ifndef BENTO_BENTO_PIPELINE_H_
#define BENTO_BENTO_PIPELINE_H_

#include <string>
#include <vector>

#include "frame/capabilities.h"
#include "frame/op.h"
#include "util/json.h"

namespace bento::run {

/// \brief One pipeline entry: a preparator assigned to a stage. Steps with
/// carry=false compute their result but do not replace the working frame
/// (group-by / pivot exploration in the Kaggle notebooks assign to a side
/// variable); actions never carry.
struct PipelineStep {
  frame::Stage stage;
  frame::Op op;
  bool carry = true;
};

/// \brief A full data-preparation pipeline for one dataset.
struct Pipeline {
  std::string dataset;
  std::vector<PipelineStep> steps;

  std::vector<PipelineStep> StageSteps(frame::Stage stage) const;
};

/// \brief The reconstructed Kaggle pipeline for `dataset` (athlete, loan,
/// patrol, taxi). The preparator inventory follows the paper's Table II and
/// the per-stage composition its Section IV describes (e.g. dedup dominates
/// DC on athlete/loan; EDA is dominated by isna/outlier/srchptn/sort).
Result<Pipeline> PipelineFor(const std::string& dataset);

/// \brief Named row functions usable from JSON pipeline specs (`applyrow`
/// cannot serialize a closure; specs reference these by name).
Result<kern::RowFn> LookupRowFn(const std::string& name);

/// \brief Bento's JSON pipeline format:
/// {"dataset": "athlete", "steps": [{"stage": "EDA", "op": "isna", ...}]}
Result<Pipeline> PipelineFromJson(const JsonValue& spec);
JsonValue PipelineToJson(const Pipeline& pipeline);

}  // namespace bento::run

#endif  // BENTO_BENTO_PIPELINE_H_
