// Regenerates the paper's Figure 5: average runtime for reading CSV and
// Parquet (BCF here) files, per engine per dataset.
#include <cstdio>

#include "bench/bench_common.h"
#include "frame/engine.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "sim/machine.h"

int main(int argc, char** argv) {
  bento::obs::TraceEnvScope trace_scope(
      bento::bench::ParseTraceArg(&argc, argv));
  bento::obs::ResourceReportScope report_scope(
      bento::bench::ParseReportArg(&argc, argv));
  using namespace bento;
  bench::PrintHeader("Figure 5", "read runtime, CSV vs columnar (BCF)");
  run::Runner runner = bench::MakeRunner();

  for (const char* dataset : {"athlete", "loan", "patrol", "taxi"}) {
    auto csv_path = runner.EnsureCsv(dataset).ValueOrDie();
    auto bcf_path = runner.EnsureBcf(dataset).ValueOrDie();
    run::TextTable table({"engine", "read CSV", "read BCF"});
    for (const std::string& id : bench::AllEngines()) {
      run::RunConfig config;
      config.engine_id = id;
      sim::Session session(runner.EffectiveMachine(config));
      auto engine = frame::CreateEngine(id).ValueOrDie();

      std::string csv_cell, bcf_cell;
      {
        sim::VirtualTimer timer;
        auto frame = engine->ReadCsv(csv_path, {});
        Status st = frame.ok() ? frame.ValueOrDie()->Collect().status()
                               : frame.status();
        csv_cell = bench::OutcomeCell(st, timer.Elapsed());
      }
      {
        sim::VirtualTimer timer;
        auto frame = engine->ReadBcf(bcf_path);
        Status st = frame.ok() ? frame.ValueOrDie()->Collect().status()
                               : frame.status();
        bcf_cell = bench::OutcomeCell(st, timer.Elapsed());
      }
      table.AddRow({id, csv_cell, bcf_cell});
    }
    std::printf("--- %s ---\n%s\n", dataset, table.ToString().c_str());
  }
  std::printf(
      "paper shape: DataTable fastest CSV reader (mmap + pointers) but no\n"
      "Parquet; Polars fastest on the columnar format; columnar beats CSV\n"
      "as datasets grow.\n");
  return 0;
}
