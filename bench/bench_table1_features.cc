// Regenerates the paper's Table I: the feature matrix of the compared
// dataframe libraries, printed from each engine model's EngineInfo.
#include <cstdio>

#include "bench/bench_common.h"
#include "frame/engine.h"
#include "obs/resource.h"
#include "obs/trace.h"

int main(int argc, char** argv) {
  bento::obs::TraceEnvScope trace_scope(
      bento::bench::ParseTraceArg(&argc, argv));
  bento::obs::ResourceReportScope report_scope(
      bento::bench::ParseReportArg(&argc, argv));
  using namespace bento;
  bench::PrintHeader("Table I", "features of the compared dataframe libraries");

  run::TextTable table({"", "MT", "GPU", "ResOpt", "Lazy", "Cluster",
                        "Native language", "License", "Version"});
  auto mark = [](bool b) { return b ? std::string("yes") : std::string("-"); };
  for (const std::string& id : bench::AllEngines()) {
    auto engine = frame::CreateEngine(id).ValueOrDie();
    const frame::EngineInfo& info = engine->info();
    table.AddRow({info.paper_name, mark(info.multithreading),
                  mark(info.gpu_acceleration),
                  mark(info.resource_optimization), mark(info.lazy_evaluation),
                  mark(info.cluster_deploy), info.native_language, info.license,
                  info.modeled_version});
  }
  std::printf("%s\n", table.ToString().c_str());
  return 0;
}
