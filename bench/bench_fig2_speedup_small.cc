// Regenerates the paper's Figure 2: per-preparator speedup over Pandas on
// the two smaller datasets (Athlete, Loan), function-core measurement mode
// (execution forced after every preparator).
#include <cstdio>

#include "bench/bench_common.h"
#include "obs/resource.h"
#include "obs/trace.h"

int main(int argc, char** argv) {
  bento::obs::TraceEnvScope trace_scope(
      bento::bench::ParseTraceArg(&argc, argv));
  bento::obs::ResourceReportScope report_scope(
      bento::bench::ParseReportArg(&argc, argv));
  using namespace bento;
  bench::PrintHeader("Figure 2",
                     "per-preparator speedup over Pandas (Athlete, Loan)");
  run::Runner runner = bench::MakeRunner();
  bench::PrintSpeedupTable(&runner, "athlete");
  bench::PrintSpeedupTable(&runner, "loan");
  std::printf(
      "paper shape: Polars ~10^3-10^4x on isna/outlier; CuDF broadly ahead;\n"
      "Vaex ahead on srchptn, far behind on isna/outlier; Modin slow on sort.\n");
  return 0;
}
