#include "bench/bench_common.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "util/json.h"

namespace bento::bench {

double ScaleFromEnv() {
  const char* env = std::getenv("BENTO_SCALE");
  if (env != nullptr) {
    double v = std::atof(env);
    if (v > 0) return v;
  }
  return 0.001;  // 1/1000 of the paper's dataset sizes by default
}

std::string DataDirFromEnv() {
  const char* env = std::getenv("BENTO_DATA_DIR");
  return env != nullptr ? env : "./bench_data";
}

run::Runner MakeRunner() { return run::Runner(DataDirFromEnv(), ScaleFromEnv()); }

std::vector<std::string> AllEngines() { return frame::EngineIds(); }

void PrintHeader(const std::string& experiment, const std::string& what) {
  std::printf("=============================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), what.c_str());
  std::printf("dataset scale: %g of paper size (set BENTO_SCALE to change)\n",
              ScaleFromEnv());
  std::printf("runtimes are simulated-machine virtual time; compare shapes,\n");
  std::printf("not absolute values (see DESIGN.md)\n");
  std::printf("=============================================================\n");
}

std::string OutcomeCell(const Status& status, double seconds) {
  if (status.ok()) return run::FormatSeconds(seconds);
  if (status.IsOutOfMemory()) return "OoM";
  if (status.IsNotImplemented()) return "n/s";
  return "err";
}

void PrintSpeedupTable(run::Runner* runner, const std::string& dataset) {
  auto pipeline = run::PipelineFor(dataset).ValueOrDie();

  struct EngineRun {
    std::string id;
    Status status;
    std::vector<run::OpTiming> ops;
  };
  std::vector<EngineRun> runs;
  for (const std::string& id : AllEngines()) {
    run::RunConfig config;
    config.engine_id = id;
    config.mode = run::RunMode::kFunctionCore;
    auto report = runner->Run(config, pipeline, dataset);
    EngineRun er;
    er.id = id;
    if (report.ok()) {
      er.status = report.ValueOrDie().status;
      er.ops = report.ValueOrDie().ops;
    } else {
      er.status = report.status();
    }
    runs.push_back(std::move(er));
  }

  const EngineRun& pandas = runs.front();  // EngineIds() lists pandas first
  std::vector<std::string> header = {"preparator", "pandas(abs)"};
  for (size_t e = 1; e < runs.size(); ++e) header.push_back(runs[e].id);
  run::TextTable table(header);

  for (size_t o = 0; o < pipeline.steps.size(); ++o) {
    const std::string op_name =
        frame::OpKindName(pipeline.steps[o].op.kind);
    std::vector<std::string> cells = {op_name};
    const bool pandas_has = o < pandas.ops.size();
    const double pandas_t = pandas_has ? pandas.ops[o].seconds : -1.0;
    cells.push_back(pandas_has ? run::FormatSeconds(pandas_t)
                               : OutcomeCell(pandas.status, -1));
    for (size_t e = 1; e < runs.size(); ++e) {
      if (o < runs[e].ops.size()) {
        if (pandas_has && pandas_t > 0 && runs[e].ops[o].seconds > 0) {
          cells.push_back(
              run::FormatSpeedup(pandas_t / runs[e].ops[o].seconds));
        } else {
          cells.push_back(run::FormatSeconds(runs[e].ops[o].seconds));
        }
      } else {
        cells.push_back(OutcomeCell(runs[e].status, -1));
      }
    }
    table.AddRow(std::move(cells));
  }
  std::printf("--- %s (speedup over Pandas; >1x is faster) ---\n%s\n",
              dataset.c_str(), table.ToString().c_str());
}

namespace {

std::string ParseFlagWithValue(const char* flag, int* argc, char** argv) {
  for (int i = 1; i < *argc - 1; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      std::string path = argv[i + 1];
      for (int j = i + 2; j < *argc; ++j) argv[j - 2] = argv[j];
      *argc -= 2;
      return path;
    }
  }
  return "";
}

/// Short git sha of the working tree, or "" outside a repository. Forked
/// once per JSON write; failures are silent (benches must run from
/// exported tarballs too).
std::string GitShaOrEmpty() {
  std::FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (p == nullptr) return "";
  char buf[64] = {0};
  std::string sha;
  if (std::fgets(buf, sizeof(buf), p) != nullptr) {
    sha = buf;
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
      sha.pop_back();
    }
  }
  ::pclose(p);
  return sha;
}

std::string HostnameOrEmpty() {
  char buf[256] = {0};
  if (::gethostname(buf, sizeof(buf) - 1) != 0) return "";
  return buf;
}

}  // namespace

std::string ParseJsonPathArg(int* argc, char** argv) {
  return ParseFlagWithValue("--json", argc, argv);
}

std::string ParseTraceArg(int* argc, char** argv) {
  return ParseFlagWithValue("--trace", argc, argv);
}

bool ParseReportArg(int* argc, char** argv) {
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--report") == 0) {
      for (int j = i + 1; j < *argc; ++j) argv[j - 1] = argv[j];
      *argc -= 1;
      return true;
    }
  }
  return false;
}

void BenchJsonWriter::Add(const std::string& name, int64_t iterations,
                          double ns_per_op, double rows_per_second) {
  rows_.push_back({name, iterations, ns_per_op, rows_per_second, {}, {}, {}});
}

void BenchJsonWriter::AddSamples(const std::string& name, int64_t iterations,
                                 const std::vector<double>& ns_samples,
                                 double rows_per_second) {
  double best = ns_samples.empty() ? 0.0 : ns_samples.front();
  for (double s : ns_samples) best = std::min(best, s);
  rows_.push_back(
      {name, iterations, best, rows_per_second, ns_samples, {}, {}});
}

BenchJsonWriter::Row* BenchJsonWriter::FindRow(const std::string& name) {
  for (auto it = rows_.rbegin(); it != rows_.rend(); ++it) {
    if (it->name == name) return &*it;
  }
  return nullptr;
}

void BenchJsonWriter::Annotate(const std::string& name, const std::string& key,
                               double value) {
  if (Row* row = FindRow(name)) row->num_extras.emplace_back(key, value);
}

void BenchJsonWriter::Annotate(const std::string& name, const std::string& key,
                               std::string value) {
  if (Row* row = FindRow(name)) {
    row->str_extras.emplace_back(key, std::move(value));
  }
}

void BenchJsonWriter::SetContext(const std::string& key, std::string value) {
  for (auto& [k, v] : extra_context_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  extra_context_.emplace_back(key, std::move(value));
}

Status BenchJsonWriter::WriteTo(const std::string& path) const {
  JsonValue doc = JsonValue::Object();
  JsonValue context = JsonValue::Object();
  context.Set("scale", JsonValue::Number(ScaleFromEnv()));
  const char* execution = std::getenv("BENTO_EXECUTION");
  context.Set("execution", JsonValue::Str(
                               execution != nullptr ? execution : "simulated"));
  const std::string sha = GitShaOrEmpty();
  if (!sha.empty()) context.Set("git_sha", JsonValue::Str(sha));
  const std::string host = HostnameOrEmpty();
  if (!host.empty()) context.Set("host", JsonValue::Str(host));
  for (const auto& [key, value] : extra_context_) {
    context.Set(key, JsonValue::Str(value));
  }
  doc.Set("context", std::move(context));
  JsonValue benchmarks = JsonValue::Array();
  for (const Row& row : rows_) {
    JsonValue b = JsonValue::Object();
    b.Set("name", JsonValue::Str(row.name));
    b.Set("iterations", JsonValue::Int(row.iterations));
    b.Set("ns_per_op", JsonValue::Number(row.ns_per_op));
    b.Set("rows_per_second", JsonValue::Number(row.rows_per_second));
    if (!row.samples_ns.empty()) {
      JsonValue samples = JsonValue::Array();
      std::vector<double> sorted = row.samples_ns;
      std::sort(sorted.begin(), sorted.end());
      double mean = 0.0;
      for (double s : row.samples_ns) {
        samples.Append(JsonValue::Number(s));
        mean += s;
      }
      mean /= static_cast<double>(row.samples_ns.size());
      double var = 0.0;
      for (double s : row.samples_ns) var += (s - mean) * (s - mean);
      var /= static_cast<double>(row.samples_ns.size());
      b.Set("samples_ns", std::move(samples));
      b.Set("min_ns", JsonValue::Number(sorted.front()));
      b.Set("median_ns", JsonValue::Number(sorted[sorted.size() / 2]));
      b.Set("stddev_ns", JsonValue::Number(std::sqrt(var)));
    }
    for (const auto& [key, value] : row.num_extras) {
      b.Set(key, JsonValue::Number(value));
    }
    for (const auto& [key, value] : row.str_extras) {
      b.Set(key, JsonValue::Str(value));
    }
    benchmarks.Append(std::move(b));
  }
  doc.Set("benchmarks", std::move(benchmarks));
  doc.Set("metrics", obs::MetricsRegistry::Global().ToJson());

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open ", path, " for writing");
  }
  const std::string text = doc.Dump(2);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return Status::OK();
}

}  // namespace bento::bench
