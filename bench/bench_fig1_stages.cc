// Regenerates the paper's Figure 1: average runtime of each pipeline stage
// (EDA, DT, DC) per dataset per engine, with lazy evaluation allowed at
// stage granularity (pipeline-stage measurement mode).
#include <cstdio>

#include "bench/bench_common.h"
#include "obs/resource.h"
#include "obs/trace.h"

int main(int argc, char** argv) {
  bento::obs::TraceEnvScope trace_scope(
      bento::bench::ParseTraceArg(&argc, argv));
  bento::obs::ResourceReportScope report_scope(
      bento::bench::ParseReportArg(&argc, argv));
  using namespace bento;
  using frame::Stage;
  bench::PrintHeader("Figure 1",
                     "per-stage runtime (EDA / DT / DC) per dataset");

  run::Runner runner = bench::MakeRunner();
  for (const char* dataset : {"athlete", "loan", "patrol", "taxi"}) {
    auto pipeline = run::PipelineFor(dataset).ValueOrDie();
    run::TextTable table({"engine", "EDA", "DT", "DC"});
    for (const std::string& id : bench::AllEngines()) {
      run::RunConfig config;
      config.engine_id = id;
      config.mode = run::RunMode::kPipelineStage;
      auto report = runner.Run(config, pipeline, dataset);
      if (!report.ok()) {
        table.AddRow({id, "err", "err", "err"});
        continue;
      }
      const run::RunReport& r = report.ValueOrDie();
      auto stage_cell = [&](Stage stage) {
        auto it = r.stage_seconds.find(stage);
        double seconds = it == r.stage_seconds.end() ? -1.0 : it->second;
        return bench::OutcomeCell(r.status, seconds);
      };
      table.AddRow({id, stage_cell(Stage::kEDA), stage_cell(Stage::kDT),
                    stage_cell(Stage::kDC)});
    }
    std::printf("--- %s ---\n%s\n", dataset, table.ToString().c_str());
  }
  std::printf(
      "paper shape: Polars leads EDA (ModinD on taxi); CuDF leads DT/DC on\n"
      "athlete/patrol; SparkSQL leads DT on taxi; Vaex leads DC on taxi.\n");
  return 0;
}
