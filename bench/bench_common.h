#ifndef BENTO_BENCH_BENCH_COMMON_H_
#define BENTO_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <string>
#include <vector>

#include "bento/pipeline.h"
#include "bento/report.h"
#include "bento/runner.h"

namespace bento::bench {

/// Dataset scale factor relative to the paper's sizes. Override with
/// BENTO_SCALE (e.g. BENTO_SCALE=0.01 for a 10x bigger run, =1.0 for the
/// full-size datasets when the machine allows).
double ScaleFromEnv();

/// Where generated CSV/BCF inputs are cached. Override with BENTO_DATA_DIR.
std::string DataDirFromEnv();

/// A ready Runner honoring the environment overrides.
run::Runner MakeRunner();

/// The engine ids in the paper's presentation order.
std::vector<std::string> AllEngines();

/// Banner every bench binary prints: experiment id + scale disclaimer.
void PrintHeader(const std::string& experiment, const std::string& what);

/// "OoM", "unsupported" or formatted seconds for a report outcome.
std::string OutcomeCell(const Status& status, double seconds);

/// Runs the dataset's pipeline in function-core mode for every engine and
/// prints per-preparator speedups over Pandas (the Fig. 2/3 series).
/// Engines that fail a preparator print OoM/err for it.
void PrintSpeedupTable(run::Runner* runner, const std::string& dataset);

/// \brief Extracts and strips a `--json <path>` flag from argv (so the
/// remaining args can flow into the benchmark framework untouched).
/// Returns the path, or "" when the flag is absent.
std::string ParseJsonPathArg(int* argc, char** argv);

/// \brief Extracts and strips a `--trace <path>` flag from argv. Returns
/// the path, or "" when absent — pass the result to obs::TraceEnvScope,
/// which also honors the BENTO_TRACE environment variable.
std::string ParseTraceArg(int* argc, char** argv);

/// \brief Extracts and strips a valueless `--report` flag from argv.
/// Returns true when present — pass the result to obs::ResourceReportScope,
/// which also honors the BENTO_REPORT environment variable.
bool ParseReportArg(int* argc, char** argv);

/// \brief Machine-readable benchmark report: one row per benchmark with
/// name, iterations, ns/op, and rows/s, serialized as JSON so perf
/// trajectories can be tracked across PRs (see BENCH_kernels.json).
class BenchJsonWriter {
 public:
  void Add(const std::string& name, int64_t iterations, double ns_per_op,
           double rows_per_second);

  /// Records every repetition: the row's headline ns_per_op is the minimum
  /// of `ns_samples` (best-of-N, the convention Add callers already follow)
  /// and the serialized row additionally carries a "samples_ns" array plus
  /// "min_ns"/"median_ns"/"stddev_ns" so run-to-run noise is inspectable
  /// from the JSON alone. Headline fields stay byte-compatible with Add.
  void AddSamples(const std::string& name, int64_t iterations,
                  const std::vector<double>& ns_samples,
                  double rows_per_second);

  /// Attaches an extra numeric/string field to the named row (e.g. the
  /// energy arm's "joules" and "energy_source"). No-op for unknown names.
  void Annotate(const std::string& name, const std::string& key, double value);
  void Annotate(const std::string& name, const std::string& key,
                std::string value);

  /// Adds or overrides a context entry (e.g. the machine spec name of a
  /// sweep). Standard metadata — git sha, BENTO_SCALE, BENTO_EXECUTION,
  /// hostname — is stamped automatically by WriteTo.
  void SetContext(const std::string& key, std::string value);

  /// Writes {"context": {...}, "benchmarks": [...], "metrics": {...}} to
  /// `path`; `metrics` is the obs::MetricsRegistry snapshot at write time.
  Status WriteTo(const std::string& path) const;

 private:
  struct Row {
    std::string name;
    int64_t iterations;
    double ns_per_op;
    double rows_per_second;
    std::vector<double> samples_ns;  ///< empty for plain Add rows
    std::vector<std::pair<std::string, double>> num_extras;
    std::vector<std::pair<std::string, std::string>> str_extras;
  };
  Row* FindRow(const std::string& name);
  std::vector<Row> rows_;
  std::vector<std::pair<std::string, std::string>> extra_context_;
};

}  // namespace bento::bench

#endif  // BENTO_BENCH_BENCH_COMMON_H_
