// Regenerates the paper's Figure 8 (and prints Table IV): runtime of the
// entire Taxi pipeline on incremental dataset samples under the laptop /
// workstation / server machine configurations, plus a streaming-executor
// worker sweep (1/2/4/8 morsel-pipeline workers, virtual time) for the
// out-of-core engines on the laptop budget.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_common.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "sim/machine.h"
#include "sim/parallel.h"

int main(int argc, char** argv) {
  bento::obs::TraceEnvScope trace_scope(
      bento::bench::ParseTraceArg(&argc, argv));
  bento::obs::ResourceReportScope report_scope(
      bento::bench::ParseReportArg(&argc, argv));
  using namespace bento;
  bench::PrintHeader("Figure 8",
                     "entire pipeline on incremental Taxi samples per machine");

  // Table IV: the machine configurations.
  {
    run::TextTable table({"", "Laptop", "Workstation", "Server"});
    table.AddRow({"# CPUs", "8", "16", "24"});
    table.AddRow({"RAM (GB)", "16", "64", "128"});
    std::printf("Table IV — machine configurations\n%s\n",
                table.ToString().c_str());
  }

  run::Runner runner = bench::MakeRunner();
  auto pipeline = run::PipelineFor("taxi").ValueOrDie();
  const std::vector<double> samples = {0.01, 0.05, 0.25, 0.5, 1.0};
  const std::vector<sim::MachineSpec> machines = {
      sim::MachineSpec::Laptop(), sim::MachineSpec::Workstation(),
      sim::MachineSpec::Server()};

  for (const sim::MachineSpec& machine : machines) {
    std::vector<std::string> header = {"engine"};
    for (double s : samples) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%d%%", static_cast<int>(s * 100));
      header.push_back(buf);
    }
    run::TextTable table(header);
    for (const std::string& id : bench::AllEngines()) {
      std::vector<std::string> cells = {id};
      bool dead = false;  // once an engine OoMs it stays OoM at larger sizes
      for (double s : samples) {
        if (dead) {
          cells.push_back("OoM");
          continue;
        }
        run::RunConfig config;
        config.engine_id = id;
        config.machine = machine;
        config.mode = run::RunMode::kPipelineFull;
        auto report = runner.Run(config, pipeline, "taxi", s);
        if (!report.ok()) {
          cells.push_back("err");
          continue;
        }
        const run::RunReport& r = report.ValueOrDie();
        cells.push_back(bench::OutcomeCell(r.status, r.total_seconds));
        if (r.status.IsOutOfMemory()) dead = true;
      }
      table.AddRow(std::move(cells));
    }
    std::printf("--- %s (%d cores, %llu GB RAM at paper scale) ---\n%s\n",
                machine.name.c_str(), machine.cores,
                static_cast<unsigned long long>(machine.ram_bytes >> 30),
                table.ToString().c_str());
  }
  // --- streaming worker sweep ---
  // The morsel-driven pipeline executor's own scalability: the streaming
  // engines run the taxi pipeline out-of-core on the laptop budget with the
  // chunk-parallel worker count pinned via BENTO_PIPELINE_WORKERS. Virtual
  // time carries the modeled overlap credit, so times fall (or at worst
  // hold flat) as workers grow on any host;
  // bench_fig7_pipeline --check-scaling gates the 1-vs-4 pair.
  {
    const std::vector<int> workers = {1, 2, 4, 8};
    std::vector<std::string> header = {"engine"};
    for (int w : workers) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "p%d", w);
      header.push_back(buf);
    }
    run::TextTable table(header);
    for (const char* id : {"vaex", "spark_sql", "polars"}) {
      run::RunConfig config;
      config.engine_id = id;
      config.machine = sim::MachineSpec::Laptop();
      config.mode = run::RunMode::kPipelineStage;
      config.use_bcf_source = std::strcmp(id, "vaex") != 0;
      std::vector<std::string> cells = {id};
      for (int w : workers) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "%d", w);
        setenv("BENTO_PIPELINE_WORKERS", buf, 1);
        double best = -1.0;
        Status status;
        for (int rep = 0; rep < 3; ++rep) {
          auto report = runner.Run(config, pipeline, "taxi");
          status = report.ok() ? report.ValueOrDie().status : report.status();
          if (!status.ok()) break;
          const double seconds = report.ValueOrDie().total_seconds;
          if (best < 0 || seconds < best) best = seconds;
        }
        cells.push_back(bench::OutcomeCell(status, best));
      }
      unsetenv("BENTO_PIPELINE_WORKERS");
      table.AddRow(std::move(cells));
    }
    std::printf("--- streaming executor worker sweep (taxi out-of-core, "
                "laptop budget, virtual time) ---\n%s\n",
                table.ToString().c_str());
  }
  std::printf(
      "paper shape: SparkSQL is the only engine finishing 100%% of taxi on\n"
      "the laptop; CuDF and Vaex complete from the workstation up; Pandas\n"
      "and SparkPD fail earliest.\n");
  return 0;
}
