// Google-benchmark microbenchmarks of the shared compute kernels — the
// per-op cost drivers behind the figure-level results (ablation material:
// metadata vs scan null probes, columnar vs object strings, serial vs
// partitioned group-by).
#include <benchmark/benchmark.h>

#include "columnar/builder.h"
#include "kernels/groupby.h"
#include "kernels/join.h"
#include "kernels/null_ops.h"
#include "kernels/sort.h"
#include "kernels/string_ops.h"
#include "sim/parallel.h"
#include "util/random.h"

namespace bento {
namespace {

col::TablePtr BenchTable(int64_t rows) {
  Rng rng(1234);
  col::Int64Builder keys;
  col::Float64Builder values;
  col::StringBuilder strings;
  for (int64_t i = 0; i < rows; ++i) {
    keys.Append(rng.UniformInt(0, 1000));
    values.AppendMaybe(rng.UniformDouble(0, 100), !rng.Bernoulli(0.1));
    strings.Append(rng.AsciiString(8, 40));
  }
  std::vector<col::Field> fields = {{"k", col::TypeId::kInt64},
                                    {"v", col::TypeId::kFloat64},
                                    {"s", col::TypeId::kString}};
  return col::Table::Make(
             std::make_shared<col::Schema>(std::move(fields)),
             {keys.Finish().ValueOrDie(), values.Finish().ValueOrDie(),
              strings.Finish().ValueOrDie()})
      .ValueOrDie();
}

void BM_IsNullMetadata(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  for (auto _ : state) {
    auto counts = kern::NullCounts(t, kern::NullProbe::kMetadata);
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IsNullMetadata)->Arg(10000)->Arg(100000);

void BM_IsNullScan(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  for (auto _ : state) {
    auto counts = kern::NullCounts(t, kern::NullProbe::kScan);
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IsNullScan)->Arg(10000)->Arg(100000);

void BM_ContainsColumnar(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  auto s = t->GetColumn("s").ValueOrDie();
  for (auto _ : state) {
    auto mask = kern::Contains(s, "ab", true, kern::StringEngine::kColumnar);
    benchmark::DoNotOptimize(mask);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ContainsColumnar)->Arg(100000);

void BM_ContainsRowObjects(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  auto s = t->GetColumn("s").ValueOrDie();
  for (auto _ : state) {
    auto mask = kern::Contains(s, "ab", true, kern::StringEngine::kRowObjects);
    benchmark::DoNotOptimize(mask);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ContainsRowObjects)->Arg(100000);

void BM_SortSerial(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  for (auto _ : state) {
    auto sorted = kern::SortTable(t, {{"k", true}});
    benchmark::DoNotOptimize(sorted);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortSerial)->Arg(50000);

void BM_GroupBySerial(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  std::vector<kern::AggSpec> aggs = {{"v", kern::AggKind::kMean, "m"}};
  for (auto _ : state) {
    auto grouped = kern::GroupBy(t, {"k"}, aggs);
    benchmark::DoNotOptimize(grouped);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupBySerial)->Arg(50000);

void BM_GroupByPartitioned(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  std::vector<kern::AggSpec> aggs = {{"v", kern::AggKind::kMean, "m"}};
  sim::ParallelOptions opts;
  opts.max_workers = 8;
  for (auto _ : state) {
    auto grouped = kern::GroupByPartitioned(t, {"k"}, aggs, opts);
    benchmark::DoNotOptimize(grouped);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByPartitioned)->Arg(50000);

// --- real execution backend (ExecutionMode::kReal) ------------------------
//
// The pairs below run the identical kernel with 1 vs 4 real workers on the
// shared work-stealing pool (no Session installed, so real dispatch is
// unconditional). Compare against the simulated makespan the partitioned
// benchmarks above report through virtual time: on a multi-core host the
// 4-worker wall-clock should land within the same ballpark as the simulated
// speedup (the acceptance bar is >= 1.5x on >= 1M rows); on a single-core
// host only the simulated numbers can show the speedup.

sim::ParallelOptions RealOptions(int workers) {
  sim::ParallelOptions opts;
  opts.mode = sim::ExecutionMode::kReal;
  opts.max_workers = workers;
  return opts;
}

void BM_GroupByReal(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  std::vector<kern::AggSpec> aggs = {{"v", kern::AggKind::kMean, "m"}};
  auto opts = RealOptions(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto grouped = kern::GroupByPartitioned(t, {"k"}, aggs, opts);
    benchmark::DoNotOptimize(grouped);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByReal)->Args({1000000, 1})->Args({1000000, 4});

void BM_SortReal(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  auto opts = RealOptions(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto indices = kern::ArgSortParallel(t, {{"k", true}}, opts);
    benchmark::DoNotOptimize(indices);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortReal)->Args({1000000, 1})->Args({1000000, 4});

void BM_JoinReal(benchmark::State& state) {
  auto left = BenchTable(state.range(0));
  // Build side: one payload row per key value.
  col::Int64Builder keys;
  col::Float64Builder payload;
  for (int64_t k = 0; k <= 1000; ++k) {
    keys.Append(k);
    payload.Append(static_cast<double>(k) * 0.5);
  }
  std::vector<col::Field> fields = {{"k", col::TypeId::kInt64},
                                    {"p", col::TypeId::kFloat64}};
  auto right = col::Table::Make(
                   std::make_shared<col::Schema>(std::move(fields)),
                   {keys.Finish().ValueOrDie(), payload.Finish().ValueOrDie()})
                   .ValueOrDie();
  auto opts = RealOptions(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto joined = kern::HashJoinParallel(left, right, "k", "k", {}, opts);
    benchmark::DoNotOptimize(joined);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JoinReal)->Args({1000000, 1})->Args({1000000, 4});

}  // namespace
}  // namespace bento

BENCHMARK_MAIN();
