// Google-benchmark microbenchmarks of the shared compute kernels — the
// per-op cost drivers behind the figure-level results (ablation material:
// metadata vs scan null probes, columnar vs object strings, serial vs
// partitioned group-by).
#include <benchmark/benchmark.h>

#include "columnar/builder.h"
#include "kernels/groupby.h"
#include "kernels/null_ops.h"
#include "kernels/sort.h"
#include "kernels/string_ops.h"
#include "util/random.h"

namespace bento {
namespace {

col::TablePtr BenchTable(int64_t rows) {
  Rng rng(1234);
  col::Int64Builder keys;
  col::Float64Builder values;
  col::StringBuilder strings;
  for (int64_t i = 0; i < rows; ++i) {
    keys.Append(rng.UniformInt(0, 1000));
    values.AppendMaybe(rng.UniformDouble(0, 100), !rng.Bernoulli(0.1));
    strings.Append(rng.AsciiString(8, 40));
  }
  std::vector<col::Field> fields = {{"k", col::TypeId::kInt64},
                                    {"v", col::TypeId::kFloat64},
                                    {"s", col::TypeId::kString}};
  return col::Table::Make(
             std::make_shared<col::Schema>(std::move(fields)),
             {keys.Finish().ValueOrDie(), values.Finish().ValueOrDie(),
              strings.Finish().ValueOrDie()})
      .ValueOrDie();
}

void BM_IsNullMetadata(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  for (auto _ : state) {
    auto counts = kern::NullCounts(t, kern::NullProbe::kMetadata);
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IsNullMetadata)->Arg(10000)->Arg(100000);

void BM_IsNullScan(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  for (auto _ : state) {
    auto counts = kern::NullCounts(t, kern::NullProbe::kScan);
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IsNullScan)->Arg(10000)->Arg(100000);

void BM_ContainsColumnar(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  auto s = t->GetColumn("s").ValueOrDie();
  for (auto _ : state) {
    auto mask = kern::Contains(s, "ab", true, kern::StringEngine::kColumnar);
    benchmark::DoNotOptimize(mask);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ContainsColumnar)->Arg(100000);

void BM_ContainsRowObjects(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  auto s = t->GetColumn("s").ValueOrDie();
  for (auto _ : state) {
    auto mask = kern::Contains(s, "ab", true, kern::StringEngine::kRowObjects);
    benchmark::DoNotOptimize(mask);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ContainsRowObjects)->Arg(100000);

void BM_SortSerial(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  for (auto _ : state) {
    auto sorted = kern::SortTable(t, {{"k", true}});
    benchmark::DoNotOptimize(sorted);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortSerial)->Arg(50000);

void BM_GroupBySerial(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  std::vector<kern::AggSpec> aggs = {{"v", kern::AggKind::kMean, "m"}};
  for (auto _ : state) {
    auto grouped = kern::GroupBy(t, {"k"}, aggs);
    benchmark::DoNotOptimize(grouped);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupBySerial)->Arg(50000);

void BM_GroupByPartitioned(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  std::vector<kern::AggSpec> aggs = {{"v", kern::AggKind::kMean, "m"}};
  sim::ParallelOptions opts;
  opts.max_workers = 8;
  for (auto _ : state) {
    auto grouped = kern::GroupByPartitioned(t, {"k"}, aggs, opts);
    benchmark::DoNotOptimize(grouped);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByPartitioned)->Arg(50000);

}  // namespace
}  // namespace bento

BENCHMARK_MAIN();
