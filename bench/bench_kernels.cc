// Google-benchmark microbenchmarks of the shared compute kernels — the
// per-op cost drivers behind the figure-level results (ablation material:
// metadata vs scan null probes, columnar vs object strings, serial vs
// partitioned group-by).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <unordered_map>

#include "bench/bench_common.h"
#include "columnar/builder.h"
#include "kernels/compare.h"
#include "kernels/dedup.h"
#include "kernels/encode.h"
#include "kernels/flat_index.h"
#include "kernels/selection.h"
#include "simd/simd.h"
#include "kernels/groupby.h"
#include "kernels/join.h"
#include "kernels/null_ops.h"
#include "kernels/row_hash.h"
#include "kernels/sort.h"
#include "kernels/string_ops.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "sim/parallel.h"
#include "util/random.h"

namespace bento {
namespace {

col::TablePtr BenchTable(int64_t rows) {
  Rng rng(1234);
  col::Int64Builder keys;
  col::Float64Builder values;
  col::StringBuilder strings;
  for (int64_t i = 0; i < rows; ++i) {
    keys.Append(rng.UniformInt(0, 1000));
    values.AppendMaybe(rng.UniformDouble(0, 100), !rng.Bernoulli(0.1));
    strings.Append(rng.AsciiString(8, 40));
  }
  std::vector<col::Field> fields = {{"k", col::TypeId::kInt64},
                                    {"v", col::TypeId::kFloat64},
                                    {"s", col::TypeId::kString}};
  return col::Table::Make(
             std::make_shared<col::Schema>(std::move(fields)),
             {keys.Finish().ValueOrDie(), values.Finish().ValueOrDie(),
              strings.Finish().ValueOrDie()})
      .ValueOrDie();
}

void BM_IsNullMetadata(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  for (auto _ : state) {
    auto counts = kern::NullCounts(t, kern::NullProbe::kMetadata);
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IsNullMetadata)->Arg(10000)->Arg(100000);

void BM_IsNullScan(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  for (auto _ : state) {
    auto counts = kern::NullCounts(t, kern::NullProbe::kScan);
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IsNullScan)->Arg(10000)->Arg(100000);

void BM_ContainsColumnar(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  auto s = t->GetColumn("s").ValueOrDie();
  for (auto _ : state) {
    auto mask = kern::Contains(s, "ab", true, kern::StringEngine::kColumnar);
    benchmark::DoNotOptimize(mask);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ContainsColumnar)->Arg(100000);

void BM_ContainsRowObjects(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  auto s = t->GetColumn("s").ValueOrDie();
  for (auto _ : state) {
    auto mask = kern::Contains(s, "ab", true, kern::StringEngine::kRowObjects);
    benchmark::DoNotOptimize(mask);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ContainsRowObjects)->Arg(100000);

void BM_SortSerial(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  for (auto _ : state) {
    auto sorted = kern::SortTable(t, {{"k", true}});
    benchmark::DoNotOptimize(sorted);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortSerial)->Arg(50000);

void BM_GroupBySerial(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  std::vector<kern::AggSpec> aggs = {{"v", kern::AggKind::kMean, "m"}};
  for (auto _ : state) {
    auto grouped = kern::GroupBy(t, {"k"}, aggs);
    benchmark::DoNotOptimize(grouped);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupBySerial)->Arg(50000);

void BM_GroupByPartitioned(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  std::vector<kern::AggSpec> aggs = {{"v", kern::AggKind::kMean, "m"}};
  sim::ParallelOptions opts;
  opts.max_workers = 8;
  for (auto _ : state) {
    auto grouped = kern::GroupByPartitioned(t, {"k"}, aggs, opts);
    benchmark::DoNotOptimize(grouped);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByPartitioned)->Arg(50000);

// --- real execution backend (ExecutionMode::kReal) ------------------------
//
// The pairs below run the identical kernel with 1 vs 4 real workers on the
// shared work-stealing pool (no Session installed, so real dispatch is
// unconditional). Compare against the simulated makespan the partitioned
// benchmarks above report through virtual time: on a multi-core host the
// 4-worker wall-clock should land within the same ballpark as the simulated
// speedup (the acceptance bar is >= 1.5x on >= 1M rows); on a single-core
// host only the simulated numbers can show the speedup.

sim::ParallelOptions RealOptions(int workers) {
  sim::ParallelOptions opts;
  opts.mode = sim::ExecutionMode::kReal;
  opts.max_workers = workers;
  return opts;
}

void BM_GroupByReal(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  std::vector<kern::AggSpec> aggs = {{"v", kern::AggKind::kMean, "m"}};
  auto opts = RealOptions(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto grouped = kern::GroupByPartitioned(t, {"k"}, aggs, opts);
    benchmark::DoNotOptimize(grouped);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByReal)->Args({1000000, 1})->Args({1000000, 4});

void BM_SortReal(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  auto opts = RealOptions(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto indices = kern::ArgSortParallel(t, {{"k", true}}, opts);
    benchmark::DoNotOptimize(indices);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortReal)->Args({1000000, 1})->Args({1000000, 4});

// --- hash-build ablations (flat open-addressing vs node-based map) --------
//
// The FlatIndex/FlatGrouper pairs below isolate the hash-build phase of
// join and group-by at 1M rows: the *_NodeMap variants reproduce the
// pre-flat-index structures (std::unordered_map chained buckets with
// per-bucket std::vectors) so the layout win stays measurable in-tree.
// BENCH_kernels.json tracks these numbers across PRs (acceptance bar for
// the flat-index PR: >= 2x rows/s on both pairs).

col::TablePtr KeyTable(int64_t rows, int64_t distinct) {
  Rng rng(99);
  col::Int64Builder keys;
  for (int64_t i = 0; i < rows; ++i) {
    keys.Append(rng.UniformInt(0, distinct - 1));
  }
  std::vector<col::Field> fields = {{"k", col::TypeId::kInt64}};
  return col::Table::Make(std::make_shared<col::Schema>(std::move(fields)),
                          {keys.Finish().ValueOrDie()})
      .ValueOrDie();
}

void BM_JoinBuildFlat(benchmark::State& state) {
  auto t = KeyTable(state.range(0), 65536);
  auto key = t->GetColumn("k").ValueOrDie();
  auto equal = kern::RowEquality::Make(t, {"k"}, t, {"k"}).ValueOrDie();
  auto hashes = kern::HashRows(t, {"k"}).ValueOrDie();
  for (auto _ : state) {
    kern::FlatIndex index;
    index.Build(
        hashes, [&](int64_t j) { return !key->IsNull(j); },
        [&](int64_t a, int64_t b) { return equal.Equal(a, b); });
    benchmark::DoNotOptimize(index.num_keys());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JoinBuildFlat)->Arg(1000000);

void BM_JoinBuildFlatRadix(benchmark::State& state) {
  auto t = KeyTable(state.range(0), 65536);
  auto key = t->GetColumn("k").ValueOrDie();
  auto equal = kern::RowEquality::Make(t, {"k"}, t, {"k"}).ValueOrDie();
  sim::ParallelOptions opts;
  opts.mode = sim::ExecutionMode::kReal;
  opts.max_workers = static_cast<int>(state.range(1));
  auto hashes = kern::HashRowsParallel(t, {"k"}, opts).ValueOrDie();
  for (auto _ : state) {
    kern::FlatIndex index;
    Status st = index.BuildPartitioned(
        hashes, [&](int64_t j) { return !key->IsNull(j); },
        [&](int64_t a, int64_t b) { return equal.Equal(a, b); }, opts);
    benchmark::DoNotOptimize(st.ok());
    benchmark::DoNotOptimize(index.num_keys());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JoinBuildFlatRadix)->Args({1000000, 4});

void BM_JoinBuildNodeMap(benchmark::State& state) {
  auto t = KeyTable(state.range(0), 65536);
  auto key = t->GetColumn("k").ValueOrDie();
  auto hashes = kern::HashRows(t, {"k"}).ValueOrDie();
  for (auto _ : state) {
    std::unordered_map<uint64_t, std::vector<int64_t>> index;
    index.reserve(static_cast<size_t>(t->num_rows()));
    for (int64_t j = 0; j < t->num_rows(); ++j) {
      if (key->IsNull(j)) continue;
      index[hashes[static_cast<size_t>(j)]].push_back(j);
    }
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JoinBuildNodeMap)->Arg(1000000);

void BM_GroupByBuildFlat(benchmark::State& state) {
  auto t = KeyTable(state.range(0), state.range(1));
  auto equal = kern::RowEquality::Make(t, {"k"}, t, {"k"}).ValueOrDie();
  auto hashes = kern::HashRows(t, {"k"}).ValueOrDie();
  for (auto _ : state) {
    kern::FlatGrouper grouper(t->num_rows() / 8 + 16);
    for (int64_t i = 0; i < t->num_rows(); ++i) {
      grouper.FindOrInsert(
          hashes[static_cast<size_t>(i)], i,
          [&](int64_t a, int64_t b) { return equal.Equal(a, b); });
    }
    benchmark::DoNotOptimize(grouper.num_groups());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByBuildFlat)->Args({1000000, 1000})->Args({1000000, 100000});

void BM_GroupByBuildNodeMap(benchmark::State& state) {
  auto t = KeyTable(state.range(0), state.range(1));
  auto equal = kern::RowEquality::Make(t, {"k"}, t, {"k"}).ValueOrDie();
  auto hashes = kern::HashRows(t, {"k"}).ValueOrDie();
  for (auto _ : state) {
    std::unordered_map<uint64_t, std::vector<int64_t>> index;
    index.reserve(static_cast<size_t>(t->num_rows()) / 2 + 16);
    std::vector<int64_t> representatives;
    for (int64_t i = 0; i < t->num_rows(); ++i) {
      auto& candidates = index[hashes[static_cast<size_t>(i)]];
      int64_t group = -1;
      for (int64_t g : candidates) {
        if (equal.Equal(representatives[static_cast<size_t>(g)], i)) {
          group = g;
          break;
        }
      }
      if (group < 0) {
        candidates.push_back(static_cast<int64_t>(representatives.size()));
        representatives.push_back(i);
      }
    }
    benchmark::DoNotOptimize(representatives.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByBuildNodeMap)
    ->Args({1000000, 1000})
    ->Args({1000000, 100000});

// --- morsel-kernel ablations (1 vs 4 real workers) ------------------------
//
// The pairs below isolate the three morsel-driven parallel kernels this
// repo's real execution mode runs: thread-local group-by states, the
// prefix-sum join probe, and the splitter-based run merge. The /1 variant
// is the serial fallback of the same entry point, so each pair is a direct
// parallel-vs-serial A/B on identical data.

void BM_GroupByMorsel(benchmark::State& state) {
  // High cardinality (~100k groups at 1M rows): per-partition groupers stay
  // hot in cache while the merge handles a non-trivial group count.
  Rng rng(7);
  col::Int64Builder keys;
  col::Float64Builder values;
  for (int64_t i = 0; i < state.range(0); ++i) {
    keys.Append(rng.UniformInt(0, 100000));
    values.Append(rng.UniformDouble(0, 100));
  }
  std::vector<col::Field> fields = {{"k", col::TypeId::kInt64},
                                    {"v", col::TypeId::kFloat64}};
  auto t = col::Table::Make(
               std::make_shared<col::Schema>(std::move(fields)),
               {keys.Finish().ValueOrDie(), values.Finish().ValueOrDie()})
               .ValueOrDie();
  std::vector<kern::AggSpec> aggs = {{"v", kern::AggKind::kSum, "s"},
                                     {"v", kern::AggKind::kCount, "n"}};
  auto opts = RealOptions(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto grouped = kern::GroupByPartitioned(t, {"k"}, aggs, opts);
    benchmark::DoNotOptimize(grouped);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByMorsel)->Args({1000000, 1})->Args({1000000, 4});

void BM_JoinProbeParallel(benchmark::State& state) {
  // ~1:1 join: 1M probe rows against 100k build keys, so probe + pair
  // emission + output gather dominate over the build.
  auto left = KeyTable(state.range(0), 100000);
  Rng rng(11);
  col::Int64Builder keys;
  col::Float64Builder payload;
  for (int64_t k = 0; k < 100000; ++k) {
    keys.Append(k);
    payload.Append(rng.UniformDouble());
  }
  std::vector<col::Field> fields = {{"k", col::TypeId::kInt64},
                                    {"p", col::TypeId::kFloat64}};
  auto right = col::Table::Make(
                   std::make_shared<col::Schema>(std::move(fields)),
                   {keys.Finish().ValueOrDie(), payload.Finish().ValueOrDie()})
                   .ValueOrDie();
  auto opts = RealOptions(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto joined = kern::HashJoinParallel(left, right, "k", "k", {}, opts);
    benchmark::DoNotOptimize(joined);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JoinProbeParallel)->Args({1000000, 1})->Args({1000000, 4});

void BM_SortMerge(benchmark::State& state) {
  // Pre-sorted runs built outside the timing loop: measures only
  // MergeSortedRuns (the phase the seed ran as a serial heap).
  auto t = BenchTable(state.range(0));
  std::vector<kern::SortKey> sort_keys = {{"k", true}};
  const int64_t n = t->num_rows();
  const int nruns = 4;
  std::vector<std::vector<int64_t>> runs;
  for (int r = 0; r < nruns; ++r) {
    const int64_t b = n * r / nruns;
    const int64_t e = n * (r + 1) / nruns;
    std::vector<int64_t> run(static_cast<size_t>(e - b));
    for (int64_t i = b; i < e; ++i) run[static_cast<size_t>(i - b)] = i;
    auto key = t->GetColumn("k").ValueOrDie();
    std::stable_sort(run.begin(), run.end(), [&](int64_t i, int64_t j) {
      return key->int64_data()[i] < key->int64_data()[j];
    });
    runs.push_back(std::move(run));
  }
  auto opts = RealOptions(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto merged = kern::MergeSortedRuns(t, sort_keys, runs, opts);
    benchmark::DoNotOptimize(merged);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortMerge)->Args({1000000, 1})->Args({1000000, 4});

// --- SIMD kernel ablations ------------------------------------------------
//
// The benchmarks below sit directly on the kernels the portable SIMD layer
// rewired: null-bitmap popcount, vectorized compare, and filter
// mask->index materialization. A/B against the scalar fallback by running
// the same binary twice, the second time with BENTO_SIMD=off (the level is
// fixed at process start, so the toggle must be an environment variable,
// not a benchmark arg). BM_GroupByDictString pairs measure the
// dictionary-encoded string path against plain strings on identical data.

void BM_NullCountSimd(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  auto v = t->GetColumn("v").ValueOrDie();
  const uint8_t* bits = v->validity_bits();
  const int64_t n = v->length();
  for (auto _ : state) {
    int64_t set = bento::simd::PopcountBits(bits, n);
    benchmark::DoNotOptimize(set);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NullCountSimd)->Arg(1000000);

void BM_CompareSimd(benchmark::State& state) {
  auto t = BenchTable(state.range(0));
  auto v = t->GetColumn("v").ValueOrDie();
  for (auto _ : state) {
    auto mask =
        kern::CompareScalar(v, kern::CompareOp::kGt, col::Scalar::Double(50.0));
    benchmark::DoNotOptimize(mask);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompareSimd)->Arg(1000000);

void BM_FilterSimd(benchmark::State& state) {
  // Mask built outside the loop; fixed-width columns only, so the measured
  // work is MaskToIndices + the typed gathers (the string gather is a
  // builder loop the SIMD layer does not touch).
  auto t = BenchTable(state.range(0))->DropColumns({"s"}).ValueOrDie();
  auto v = t->GetColumn("v").ValueOrDie();
  auto mask =
      kern::CompareScalar(v, kern::CompareOp::kGt, col::Scalar::Double(50.0))
          .ValueOrDie();
  for (auto _ : state) {
    auto filtered = kern::FilterTable(t, mask);
    benchmark::DoNotOptimize(filtered);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FilterSimd)->Arg(1000000);

col::TablePtr StringKeyTable(int64_t rows, int distinct, bool dict_encode) {
  Rng rng(4321);
  col::StringBuilder keys;
  col::Float64Builder values;
  for (int64_t i = 0; i < rows; ++i) {
    keys.Append("team" + std::to_string(rng.UniformInt(0, distinct - 1)));
    values.Append(rng.UniformDouble(0, 100));
  }
  auto k = keys.Finish().ValueOrDie();
  if (dict_encode) k = kern::DictEncode(k).ValueOrDie();
  std::vector<col::Field> fields = {{"k", k->type()},
                                    {"v", col::TypeId::kFloat64}};
  return col::Table::Make(std::make_shared<col::Schema>(std::move(fields)),
                          {k, values.Finish().ValueOrDie()})
      .ValueOrDie();
}

void BM_GroupByStringKey(benchmark::State& state) {
  auto t = StringKeyTable(state.range(0), 1000, /*dict_encode=*/false);
  std::vector<kern::AggSpec> aggs = {{"v", kern::AggKind::kSum, "s"}};
  for (auto _ : state) {
    auto grouped = kern::GroupBy(t, {"k"}, aggs);
    benchmark::DoNotOptimize(grouped);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByStringKey)->Arg(1000000);

void BM_GroupByDictString(benchmark::State& state) {
  auto t = StringKeyTable(state.range(0), 1000, /*dict_encode=*/true);
  std::vector<kern::AggSpec> aggs = {{"v", kern::AggKind::kSum, "s"}};
  for (auto _ : state) {
    auto grouped = kern::GroupBy(t, {"k"}, aggs);
    benchmark::DoNotOptimize(grouped);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByDictString)->Arg(1000000);

void BM_DedupStringKey(benchmark::State& state) {
  auto t = StringKeyTable(state.range(0), 5000, /*dict_encode=*/false);
  for (auto _ : state) {
    auto deduped = kern::DropDuplicates(t, {"k"});
    benchmark::DoNotOptimize(deduped);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DedupStringKey)->Arg(1000000);

void BM_DedupDictString(benchmark::State& state) {
  auto t = StringKeyTable(state.range(0), 5000, /*dict_encode=*/true);
  for (auto _ : state) {
    auto deduped = kern::DropDuplicates(t, {"k"});
    benchmark::DoNotOptimize(deduped);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DedupDictString)->Arg(1000000);

void BM_JoinReal(benchmark::State& state) {
  auto left = BenchTable(state.range(0));
  // Build side: one payload row per key value.
  col::Int64Builder keys;
  col::Float64Builder payload;
  for (int64_t k = 0; k <= 1000; ++k) {
    keys.Append(k);
    payload.Append(static_cast<double>(k) * 0.5);
  }
  std::vector<col::Field> fields = {{"k", col::TypeId::kInt64},
                                    {"p", col::TypeId::kFloat64}};
  auto right = col::Table::Make(
                   std::make_shared<col::Schema>(std::move(fields)),
                   {keys.Finish().ValueOrDie(), payload.Finish().ValueOrDie()})
                   .ValueOrDie();
  auto opts = RealOptions(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto joined = kern::HashJoinParallel(left, right, "k", "k", {}, opts);
    benchmark::DoNotOptimize(joined);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JoinReal)->Args({1000000, 1})->Args({1000000, 4});

}  // namespace
}  // namespace bento

namespace {

// Console reporter that additionally captures per-iteration runs so the
// binary can emit BENCH_kernels.json-style output via `--json <path>`.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      if (run.run_type != Run::RT_Iteration) continue;
      const double ns_per_op =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations) *
                    1e9
              : 0.0;
      double rows_per_second = 0.0;
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) rows_per_second = it->second;
      writer_.Add(run.benchmark_name(), run.iterations, ns_per_op,
                  rows_per_second);
      wall_ns_[run.benchmark_name()] = ns_per_op;
      rows_per_s_[run.benchmark_name()] = rows_per_second;
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const bento::bench::BenchJsonWriter& writer() const { return writer_; }

  /// Wall-clock ns/op by benchmark name, for post-run scaling assertions.
  const std::map<std::string, double>& wall_ns() const { return wall_ns_; }

  /// Throughput by benchmark name, for the absolute floor assertions.
  const std::map<std::string, double>& rows_per_s() const {
    return rows_per_s_;
  }

 private:
  bento::bench::BenchJsonWriter writer_;
  std::map<std::string, double> wall_ns_;
  std::map<std::string, double> rows_per_s_;
};

/// Strips a bare `--check-scaling` flag from argv; returns whether present.
bool ParseCheckScalingArg(int* argc, char** argv) {
  for (int i = 1; i < *argc; ++i) {
    if (std::string(argv[i]) == "--check-scaling") {
      for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
      --*argc;
      return true;
    }
  }
  return false;
}

/// The multi-worker regression gate: the 4-worker morsel kernels must not
/// run slower (wall clock) than their serial 1-worker twins on identical
/// data — the seed's partitioned group-by was 4.5x *slower*, which this
/// check would have caught. A small tolerance absorbs timer noise on
/// single-core hosts, where the best possible wall ratio is ~1.0.
int CheckScaling(const std::map<std::string, double>& wall_ns,
                 const std::map<std::string, double>& rows_per_s) {
  constexpr double kTolerance = 1.10;
  const std::pair<const char*, const char*> pairs[] = {
      {"BM_GroupByReal/1000000/4", "BM_GroupByReal/1000000/1"},
      {"BM_JoinReal/1000000/4", "BM_JoinReal/1000000/1"},
  };
  int failures = 0;
  for (const auto& [parallel, serial] : pairs) {
    auto p = wall_ns.find(parallel);
    auto s = wall_ns.find(serial);
    if (p == wall_ns.end() || s == wall_ns.end()) {
      std::fprintf(stderr, "check-scaling: missing %s or %s in this run\n",
                   parallel, serial);
      ++failures;
      continue;
    }
    const double ratio = p->second / s->second;
    std::fprintf(stderr, "check-scaling: %s / %s = %.3f\n", parallel, serial,
                 ratio);
    if (ratio > kTolerance) {
      std::fprintf(stderr,
                   "check-scaling: FAIL — %s is %.2fx slower than %s\n",
                   parallel, ratio, serial);
      ++failures;
    }
  }
  // Absolute single-thread throughput floors (rows/s). Set roughly 10x
  // below the rates a 2020s x86 dev box reaches with SIMD active, so they
  // tolerate slow CI hosts yet still catch order-of-magnitude regressions —
  // an accidentally-scalarized hot loop, a quadratic slip, or a kernel
  // silently falling back to a row-at-a-time path.
  const std::pair<const char*, double> floors[] = {
      {"BM_NullCountSimd/1000000", 5e9},    // bitmap popcount
      {"BM_CompareSimd/1000000", 1e8},      // vectorized compare + alloc
      {"BM_FilterSimd/1000000", 2e7},       // mask->indices + typed gathers
      {"BM_IsNullScan/100000", 5e7},        // per-column validity scans
      {"BM_SortSerial/50000", 5e5},         // serial multi-column sort
      {"BM_GroupBySerial/50000", 2e6},      // serial hash group-by
      {"BM_GroupByDictString/1000000", 5e6},  // code-hashed string group-by
      {"BM_DedupDictString/1000000", 5e6},    // code-hashed dedup
  };
  for (const auto& [name, floor] : floors) {
    auto it = rows_per_s.find(name);
    if (it == rows_per_s.end()) {
      std::fprintf(stderr, "check-scaling: missing %s in this run\n", name);
      ++failures;
      continue;
    }
    std::fprintf(stderr, "check-scaling: %s = %.3g rows/s (floor %.3g)\n",
                 name, it->second, floor);
    if (it->second < floor) {
      std::fprintf(stderr,
                   "check-scaling: FAIL — %s below the %.3g rows/s floor\n",
                   name, floor);
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bento::bench::ParseJsonPathArg(&argc, argv);
  const bool check_scaling = ParseCheckScalingArg(&argc, argv);
  bento::obs::TraceEnvScope trace_scope(
      bento::bench::ParseTraceArg(&argc, argv));
  bento::obs::ResourceReportScope report_scope(
      bento::bench::ParseReportArg(&argc, argv));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    bento::Status st = reporter.writer().WriteTo(json_path);
    if (!st.ok()) {
      std::fprintf(stderr, "--json: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (check_scaling) {
    return CheckScaling(reporter.wall_ns(), reporter.rows_per_s());
  }
  return 0;
}
