// Regenerates the paper's Figure 3: per-preparator speedup over Pandas on
// the two larger datasets (Patrol, Taxi), with OoM outcomes visible (the
// paper reports Pandas out-of-memory cases here).
#include <cstdio>

#include "bench/bench_common.h"
#include "obs/resource.h"
#include "obs/trace.h"

int main(int argc, char** argv) {
  bento::obs::TraceEnvScope trace_scope(
      bento::bench::ParseTraceArg(&argc, argv));
  bento::obs::ResourceReportScope report_scope(
      bento::bench::ParseReportArg(&argc, argv));
  using namespace bento;
  bench::PrintHeader("Figure 3",
                     "per-preparator speedup over Pandas (Patrol, Taxi)");
  run::Runner runner = bench::MakeRunner();
  bench::PrintSpeedupTable(&runner, "patrol");
  bench::PrintSpeedupTable(&runner, "taxi");
  std::printf(
      "paper shape: DataTable wins isna on string-heavy Patrol; Vaex ~100x\n"
      "on srchptn; Spark wins sort at scale; Pandas hits OoM on applyrow.\n");
  return 0;
}
