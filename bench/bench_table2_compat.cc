// Regenerates the paper's Table II: per-preparator Pandas-API compatibility
// of every library (++ full / + renamed / o emulated by the Bento authors).
#include <cstdio>

#include "bench/bench_common.h"
#include "frame/capabilities.h"
#include "obs/resource.h"
#include "obs/trace.h"

int main(int argc, char** argv) {
  bento::obs::TraceEnvScope trace_scope(
      bento::bench::ParseTraceArg(&argc, argv));
  bento::obs::ResourceReportScope report_scope(
      bento::bench::ParseReportArg(&argc, argv));
  using namespace bento;
  bench::PrintHeader("Table II",
                     "compatibility of dataframe libraries with Pandas API");

  std::vector<std::string> header = {"stage", "preparator", "Pandas API"};
  for (const std::string& id : frame::CapabilityEngineOrder()) {
    header.push_back(id);
  }
  run::TextTable table(header);
  for (const frame::CapabilityRow& row : frame::CapabilityMatrix()) {
    std::vector<std::string> cells = {frame::StageName(row.stage),
                                      row.preparator, row.pandas_api};
    for (frame::Support s : row.support) {
      cells.push_back(frame::SupportMark(s));
    }
    table.AddRow(std::move(cells));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("legend: ++ matches Pandas interface, + renamed interface,\n");
  std::printf("        o  missing from the API (emulated by the framework)\n");
  return 0;
}
