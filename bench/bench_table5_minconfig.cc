// Regenerates the paper's Table V: the minimum machine configuration
// (Laptop < Workstation < Server, or X = fails everywhere) each engine
// needs to run the full pipeline on incremental samples of Patrol and Taxi.
#include <cstdio>

#include "bench/bench_common.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "sim/machine.h"

int main(int argc, char** argv) {
  bento::obs::TraceEnvScope trace_scope(
      bento::bench::ParseTraceArg(&argc, argv));
  bento::obs::ResourceReportScope report_scope(
      bento::bench::ParseReportArg(&argc, argv));
  using namespace bento;
  bench::PrintHeader("Table V",
                     "minimum machine configuration per dataset sample");

  run::Runner runner = bench::MakeRunner();
  const std::vector<double> samples = {0.01, 0.05, 0.25, 0.5, 1.0};
  const std::vector<std::pair<std::string, sim::MachineSpec>> ladder = {
      {"LP", sim::MachineSpec::Laptop()},
      {"WS", sim::MachineSpec::Workstation()},
      {"SV", sim::MachineSpec::Server()},
  };

  for (const char* dataset : {"patrol", "taxi"}) {
    auto pipeline = run::PipelineFor(dataset).ValueOrDie();
    std::vector<std::string> header = {"engine"};
    for (double s : samples) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%d%%", static_cast<int>(s * 100));
      header.push_back(buf);
    }
    run::TextTable table(header);

    for (const std::string& id : bench::AllEngines()) {
      std::vector<std::string> cells = {id};
      // The minimum config is monotone in sample size: start each sample's
      // search at the previous sample's answer.
      size_t floor_config = 0;
      for (double s : samples) {
        std::string answer = "X";
        for (size_t m = floor_config; m < ladder.size(); ++m) {
          run::RunConfig config;
          config.engine_id = id;
          config.machine = ladder[m].second;
          config.mode = run::RunMode::kPipelineFull;
          auto report = runner.Run(config, pipeline, dataset, s);
          if (report.ok() && report.ValueOrDie().status.ok()) {
            answer = ladder[m].first;
            floor_config = m;
            break;
          }
        }
        if (answer == "X") floor_config = ladder.size();
        cells.push_back(answer);
      }
      table.AddRow(std::move(cells));
    }
    std::printf("--- %s ---\n%s\n", dataset, table.ToString().c_str());
  }
  std::printf(
      "paper shape: SparkSQL all-LP on both datasets; CuDF close behind\n"
      "(needs the GPU); Vaex low-footprint; Pandas degrades to X earliest;\n"
      "Polars scales poorly despite its speed.\n");
  return 0;
}
