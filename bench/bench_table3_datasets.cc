// Regenerates the paper's Table III: features of the selected datasets,
// measured on the synthetic generators' output (scaled rows; type mix,
// null share and string lengths must match the published profile).
#include <cstdio>

#include "bench/bench_common.h"
#include "datagen/datasets.h"
#include "io/csv.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  bento::obs::TraceEnvScope trace_scope(
      bento::bench::ParseTraceArg(&argc, argv));
  bento::obs::ResourceReportScope report_scope(
      bento::bench::ParseReportArg(&argc, argv));
  using namespace bento;
  bench::PrintHeader("Table III", "features of the selected datasets");

  run::TextTable table({"", "Athlete", "Loan", "Patrol", "Taxi"});
  std::vector<gen::MeasuredProfile> measured;
  std::vector<double> csv_mb;
  run::Runner runner = bench::MakeRunner();
  for (const char* name : {"athlete", "loan", "patrol", "taxi"}) {
    auto t = gen::GenerateDataset(name, bench::ScaleFromEnv()).ValueOrDie();
    measured.push_back(gen::MeasureProfile(t));
    auto path = runner.EnsureCsv(name).ValueOrDie();
    FILE* f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    csv_mb.push_back(static_cast<double>(std::ftell(f)) / (1024.0 * 1024.0));
    std::fclose(f);
  }

  auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells = {label};
    for (const auto& m : measured) cells.push_back(getter(m));
    table.AddRow(std::move(cells));
  };
  row("CSV size (MiB, at scale)", [&](const gen::MeasuredProfile& m) {
    size_t i = &m - measured.data();
    return FormatFixed(csv_mb[i], 2);
  });
  row("# Rows", [](const gen::MeasuredProfile& m) {
    return std::to_string(m.rows);
  });
  row("# Columns", [](const gen::MeasuredProfile& m) {
    return std::to_string(m.columns);
  });
  row("# Num - Str - Bool", [](const gen::MeasuredProfile& m) {
    return std::to_string(m.numeric) + "-" + std::to_string(m.strings) + "-" +
           std::to_string(m.bools);
  });
  row("% Null", [](const gen::MeasuredProfile& m) {
    return FormatFixed(m.null_fraction * 100.0, 1) + "%";
  });
  row("Str len range", [](const gen::MeasuredProfile& m) {
    return "(" + std::to_string(m.str_len_min) + ", " +
           std::to_string(m.str_len_max) + ")";
  });
  std::printf("%s\n", table.ToString().c_str());

  std::printf("paper (full scale): rows 0.2M/2M/27M/77M, cols 15/151/34/18,\n");
  std::printf("nulls 9%%/31%%/22%%/0%%, strlen (1,108)/(1,3988)/(1,2293)/(1,19)\n");
  return 0;
}
