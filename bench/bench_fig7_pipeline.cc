// Regenerates the paper's Figure 7: runtime of the entire data-preparation
// pipeline per engine per dataset, with the lazy-vs-eager deltas for the
// engines supporting lazy evaluation (SparkPD, SparkSQL, Polars).
#include <cstdio>

#include "bench/bench_common.h"
#include "obs/trace.h"

int main(int argc, char** argv) {
  bento::obs::TraceEnvScope trace_scope(
      bento::bench::ParseTraceArg(&argc, argv));
  using namespace bento;
  bench::PrintHeader("Figure 7",
                     "entire pipeline runtime + lazy vs eager deltas");
  run::Runner runner = bench::MakeRunner();

  for (const char* dataset : {"athlete", "loan", "patrol", "taxi"}) {
    auto pipeline = run::PipelineFor(dataset).ValueOrDie();
    run::TextTable table({"engine", "pipeline", "eager-mode", "lazy gain"});

    auto run_one = [&](const std::string& id, Status* status_out) {
      run::RunConfig config;
      config.engine_id = id;
      config.mode = run::RunMode::kPipelineFull;
      auto report = runner.Run(config, pipeline, dataset);
      if (!report.ok()) {
        *status_out = report.status();
        return -1.0;
      }
      *status_out = report.ValueOrDie().status;
      return status_out->ok() ? report.ValueOrDie().total_seconds : -1.0;
    };

    for (const std::string& id : bench::AllEngines()) {
      Status status;
      double lazy_seconds = run_one(id, &status);
      std::string lazy_cell = bench::OutcomeCell(status, lazy_seconds);

      // The paper compares the lazy engines against themselves in forced
      // (eager) mode; other engines have no second column.
      std::string eager_cell = "-";
      std::string gain_cell = "-";
      if (id == "polars" || id == "spark_sql" || id == "spark_pd") {
        Status eager_status;
        double eager_seconds = run_one(id + "_eager", &eager_status);
        eager_cell = bench::OutcomeCell(eager_status, eager_seconds);
        if (status.ok() && eager_status.ok() && lazy_seconds > 0) {
          double gain = (eager_seconds - lazy_seconds) / lazy_seconds * 100.0;
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%+.0f%%", gain);
          gain_cell = buf;
        }
      }
      table.AddRow({id, lazy_cell, eager_cell, gain_cell});
    }
    std::printf("--- %s ---\n%s\n", dataset, table.ToString().c_str());
  }
  std::printf(
      "paper shape: CuDF leads overall; SparkSQL leads on taxi; lazy gains\n"
      "grow with dataset size (Polars +126%% on patrol) while SparkSQL's plan\n"
      "overhead mutes its gains on small inputs.\n");
  return 0;
}
