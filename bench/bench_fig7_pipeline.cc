// Regenerates the paper's Figure 7: runtime of the entire data-preparation
// pipeline per engine per dataset, with the lazy-vs-eager deltas for the
// engines supporting lazy evaluation (SparkPD, SparkSQL, Polars) plus the
// optimizer A/B: each lazy engine also runs as its `_noopt` registry
// variant, which executes the plan exactly as written, and an energy arm
// measuring joules per pipeline (RAPL when readable, cycles×watts model
// otherwise). `--json <path>` records every arm (BENCH_pipeline.json);
// `--report` prints the resource/energy rollup table; `--explain` dumps
// each optimized plan before/after rewriting to stderr (BENTO_EXPLAIN=1).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench/bench_common.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace {

/// Strips a bare flag from argv; returns true when present.
bool ParseFlagArg(int* argc, char** argv, const char* flag) {
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], flag) != 0) continue;
    for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
    --*argc;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bento::obs::TraceEnvScope trace_scope(
      bento::bench::ParseTraceArg(&argc, argv));
  bento::obs::ResourceReportScope report_scope(
      bento::bench::ParseReportArg(&argc, argv));
  const std::string json_path = bento::bench::ParseJsonPathArg(&argc, argv);
  const bool check_scaling = ParseFlagArg(&argc, argv, "--check-scaling");
  if (ParseFlagArg(&argc, argv, "--explain")) setenv("BENTO_EXPLAIN", "1", 1);
  using namespace bento;
  bench::PrintHeader("Figure 7",
                     "entire pipeline runtime + lazy vs eager/no-opt deltas");
  run::Runner runner = bench::MakeRunner();
  bench::BenchJsonWriter json;
  int optimizer_wins = 0;

  for (const char* dataset : {"athlete", "loan", "patrol", "taxi"}) {
    auto pipeline = run::PipelineFor(dataset).ValueOrDie();
    run::TextTable table(
        {"engine", "pipeline", "eager-mode", "no-opt", "opt gain"});

    // Best-of-3: virtual time is derived from wall time, so single shots
    // jitter more than the few-percent optimizer deltas being compared.
    constexpr int kReps = 3;
    auto run_one = [&](const std::string& id, Status* status_out) {
      run::RunConfig config;
      config.engine_id = id;
      config.mode = run::RunMode::kPipelineFull;
      std::vector<double> samples_ns;
      double best = -1.0;
      for (int rep = 0; rep < kReps; ++rep) {
        auto report = runner.Run(config, pipeline, dataset);
        if (!report.ok()) {
          *status_out = report.status();
          return -1.0;
        }
        *status_out = report.ValueOrDie().status;
        if (!status_out->ok()) return -1.0;
        const double seconds = report.ValueOrDie().total_seconds;
        samples_ns.push_back(seconds * 1e9);
        if (best < 0 || seconds < best) best = seconds;
      }
      json.AddSamples(std::string(dataset) + "/" + id, kReps, samples_ns,
                      0.0);
      return best;
    };

    for (const std::string& id : bench::AllEngines()) {
      Status status;
      double lazy_seconds = run_one(id, &status);
      std::string lazy_cell = bench::OutcomeCell(status, lazy_seconds);

      // The paper compares the lazy engines against themselves in forced
      // (eager) mode; the no-opt arm isolates the plan optimizer's share of
      // the lazy gain. Other engines have no extra columns.
      std::string eager_cell = "-";
      std::string noopt_cell = "-";
      std::string gain_cell = "-";
      const bool has_eager =
          id == "polars" || id == "spark_sql" || id == "spark_pd";
      const bool is_lazy = has_eager || id == "vaex";
      double eager_seconds = -1.0;
      if (has_eager) {
        Status eager_status;
        eager_seconds = run_one(id + "_eager", &eager_status);
        eager_cell = bench::OutcomeCell(eager_status, eager_seconds);
      }
      if (is_lazy) {
        Status noopt_status;
        const double noopt_seconds = run_one(id + "_noopt", &noopt_status);
        noopt_cell = bench::OutcomeCell(noopt_status, noopt_seconds);
        if (status.ok() && noopt_status.ok() && lazy_seconds > 0) {
          const double gain =
              (noopt_seconds - lazy_seconds) / lazy_seconds * 100.0;
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%+.0f%%", gain);
          gain_cell = buf;
          if (lazy_seconds < noopt_seconds &&
              (eager_seconds < 0 || lazy_seconds < eager_seconds)) {
            ++optimizer_wins;
          }
        }
      }
      table.AddRow({id, lazy_cell, eager_cell, noopt_cell, gain_cell});
    }
    std::printf("--- %s ---\n%s\n", dataset, table.ToString().c_str());
  }
  // --- out-of-core arm ---
  // The two paper-scale datasets (Patrol 27Mx34, Taxi 77Mx18) again, but on
  // the laptop RAM model instead of the evaluation host: the streaming
  // engines must finish by spilling, with the pool peak under the budget.
  // Each cell runs the morsel-driven pipeline A/B pinned to 1 and 4 modeled
  // workers (`<dataset>/<id>_ooc_p{1,4}` in the JSON). Virtual time carries
  // the pipeline's overlap credit, so the A/B is host-independent — it holds
  // on a single-core runner. `--check-scaling` gates the 4-worker time at
  // 1.10x the 1-worker time.
  int scaling_violations = 0;
  {
    run::TextTable table({"engine", "dataset", "ooc p1", "ooc p4", "ratio",
                          "peak", "budget"});
    constexpr int kOocReps = 3;
    for (const char* dataset : {"patrol", "taxi"}) {
      auto pipeline = run::PipelineFor(dataset).ValueOrDie();
      for (const char* id : {"vaex", "spark_sql", "polars"}) {
        run::RunConfig config;
        config.engine_id = id;
        config.machine = sim::MachineSpec::Laptop();
        config.mode = run::RunMode::kPipelineStage;
        config.use_bcf_source = std::strcmp(id, "vaex") != 0;

        double best[2] = {-1.0, -1.0};
        uint64_t peak = 0;
        Status status;
        for (int arm = 0; arm < 2 && status.ok(); ++arm) {
          const int workers = arm == 0 ? 1 : 4;
          setenv("BENTO_PIPELINE_WORKERS", workers == 1 ? "1" : "4", 1);
          std::vector<double> samples_ns;
          for (int rep = 0; rep < kOocReps; ++rep) {
            auto report = runner.Run(config, pipeline, dataset);
            status = report.ok() ? report.ValueOrDie().status
                                 : report.status();
            if (!status.ok()) break;
            const double seconds = report.ValueOrDie().total_seconds;
            samples_ns.push_back(seconds * 1e9);
            if (best[arm] < 0 || seconds < best[arm]) best[arm] = seconds;
            peak = std::max(peak, report.ValueOrDie().peak_host_bytes);
          }
          if (status.ok()) {
            json.AddSamples(std::string(dataset) + "/" + id + "_ooc_p" +
                                std::to_string(workers),
                            kOocReps, samples_ns, 0.0);
          }
        }
        unsetenv("BENTO_PIPELINE_WORKERS");

        char ratio_cell[32] = "-";
        if (status.ok() && best[0] > 0 && best[1] > 0) {
          const double ratio = best[1] / best[0];
          std::snprintf(ratio_cell, sizeof(ratio_cell), "%.2fx", ratio);
          if (ratio > 1.10) {
            ++scaling_violations;
            std::fprintf(stderr,
                         "scaling violation: %s/%s ooc p4 %.3fs vs p1 %.3fs "
                         "(%.2fx > 1.10x)\n",
                         dataset, id, best[1], best[0], ratio);
          }
        }
        const uint64_t budget =
            runner.EffectiveMachine(config).ram_bytes;
        table.AddRow({id, dataset, bench::OutcomeCell(status, best[0]),
                      bench::OutcomeCell(status, best[1]), ratio_cell,
                      HumanBytes(peak), HumanBytes(budget)});
      }
    }
    std::printf("--- out-of-core (laptop budget, per-stage collect, "
                "1 vs 4 pipeline workers, virtual time) ---\n%s\n",
                table.ToString().c_str());
  }

  // --- energy arm ---
  // Joules per full pipeline: every dataset against the three archetypal
  // engines (eager pandas, lazy-columnar polars, plan-optimizing spark_sql),
  // one sampled run each. Energy is RAPL when the host exposes readable
  // powercap counters and the calibrated cycles×watts model otherwise; the
  // source is labelled per row in the table and the JSON. Per-stage p50/p99
  // span latencies ride into the JSON rows alongside the joules. Each run
  // resets the process-wide aggregation window, so under --report the final
  // rollup table covers only the last run of this arm.
  {
    run::TextTable table({"engine", "dataset", "pipeline", "joules",
                          "source"});
    for (const char* dataset : {"athlete", "loan", "patrol", "taxi"}) {
      auto pipeline = run::PipelineFor(dataset).ValueOrDie();
      for (const char* id : {"pandas", "polars", "spark_sql"}) {
        run::RunConfig config;
        config.engine_id = id;
        config.mode = run::RunMode::kPipelineStage;
        const bool owns_tracing = !obs::TracingEnabled();
        if (owns_tracing) obs::StartTracing();
        const bool owns_sampling = !obs::ResourceSamplingEnabled();
        obs::ResetResourceAggregation();
        if (owns_sampling) obs::EnableResourceSampling();
        auto report = runner.Run(config, pipeline, dataset);
        if (owns_sampling) obs::DisableResourceSampling();
        obs::ResourceReport resources = obs::SnapshotResourceReport();
        if (owns_tracing) obs::StopTracing();

        Status status = report.ok() ? report.ValueOrDie().status
                                    : report.status();
        double seconds =
            status.ok() ? report.ValueOrDie().total_seconds : -1.0;
        char joules_cell[32] = "-";
        if (status.ok()) {
          std::snprintf(joules_cell, sizeof(joules_cell), "%.4g",
                        resources.total_joules);
          const std::string name = std::string(dataset) + "/" + id +
                                   "_energy";
          json.Add(name, 1, seconds * 1e9, 0.0);
          json.Annotate(name, "joules", resources.total_joules);
          json.Annotate(name, "energy_source", resources.energy_source);
          const std::string context = std::string(dataset) + "/" + id;
          for (const auto& row : resources.rows) {
            if (row.category != "stage" || row.context != context) continue;
            json.Annotate(name, row.name + ".p50_us", row.p50_us);
            json.Annotate(name, row.name + ".p99_us", row.p99_us);
          }
        }
        table.AddRow({id, dataset, bench::OutcomeCell(status, seconds),
                      joules_cell, resources.energy_source});
      }
    }
    std::printf("--- energy per pipeline (RAPL or cycles×watts model) "
                "---\n%s\n",
                table.ToString().c_str());
  }

  std::printf(
      "paper shape: CuDF leads overall; SparkSQL leads on taxi; lazy gains\n"
      "grow with dataset size (Polars +126%% on patrol) while SparkSQL's plan\n"
      "overhead mutes its gains on small inputs. The no-opt column runs the\n"
      "same lazy engine with the rewrite rules disabled: its gap to the\n"
      "optimized column is the plan optimizer's share of the lazy win.\n");
  std::printf("optimizer beat no-opt AND eager in %d lazy-engine/dataset "
              "cells\n", optimizer_wins);
  if (!json_path.empty()) {
    json.SetContext("figure", "fig7_pipeline");
    Status st = json.WriteTo(json_path);
    if (!st.ok()) {
      std::fprintf(stderr, "json write failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (check_scaling && scaling_violations > 0) {
    std::fprintf(stderr,
                 "--check-scaling: %d out-of-core cell(s) regressed at 4 "
                 "pipeline workers (> 1.10x the 1-worker time)\n",
                 scaling_violations);
    return 1;
  }
  if (check_scaling) {
    std::printf("--check-scaling: all out-of-core cells within 1.10x of the "
                "1-worker time at 4 workers\n");
  }
  return 0;
}
