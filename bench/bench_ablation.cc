// Ablation bench: isolates the design choices DESIGN.md credits for the
// headline results by toggling one mechanism at a time on the same data.
#include <cstdio>

#include "bench/bench_common.h"
#include "datagen/datasets.h"
#include "engines/polars.h"
#include "engines/spark.h"
#include "frame/exec.h"
#include "kernels/null_ops.h"
#include "kernels/stats.h"
#include "kernels/string_ops.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "sim/machine.h"

namespace {

using namespace bento;

double TimeIt(const std::function<Status()>& fn) {
  sim::VirtualTimer timer;
  Status st = fn();
  if (!st.ok()) {
    std::fprintf(stderr, "ablation step failed: %s\n", st.ToString().c_str());
    return -1;
  }
  return timer.Elapsed();
}

class NoPushdownPolars : public eng::PolarsEngine {
 public:
  bool EnablePredicatePushdown() const override { return false; }
  bool EnableProjectionPushdown() const override { return false; }
};

class NoStreamingSpark : public eng::SparkSqlEngine {
 public:
  bool StreamsBreakers() const override { return false; }
};

}  // namespace

int main(int argc, char** argv) {
  bento::obs::TraceEnvScope trace_scope(
      bento::bench::ParseTraceArg(&argc, argv));
  bento::obs::ResourceReportScope report_scope(
      bento::bench::ParseReportArg(&argc, argv));
  using frame::Op;
  bench::PrintHeader("Ablations", "one mechanism toggled at a time");

  auto patrol =
      gen::GenerateDataset("patrol", bench::ScaleFromEnv()).ValueOrDie();
  run::TextTable table({"mechanism", "with", "without", "effect"});
  sim::Session session(sim::MachineSpec::EvaluationHost().Scaled(
      bench::ScaleFromEnv()));

  // 1. Null-count metadata vs value scan (the isna gap).
  {
    double with = TimeIt([&] {
      return kern::NullCounts(patrol, kern::NullProbe::kMetadata).status();
    });
    double without = TimeIt([&] {
      return kern::NullCounts(patrol, kern::NullProbe::kScan).status();
    });
    table.AddRow({"isna: validity metadata", run::FormatSeconds(with),
                  run::FormatSeconds(without),
                  run::FormatSpeedup(without / with)});
  }

  // 2. Histogram quantile vs copy-and-sort (the outlier gap).
  {
    auto col = patrol->GetColumn("driver_age").ValueOrDie();
    double with =
        TimeIt([&] { return kern::QuantileApprox(col, 0.99).status(); });
    double without =
        TimeIt([&] { return kern::Quantile(col, 0.99).status(); });
    table.AddRow({"outlier: streaming quantile", run::FormatSeconds(with),
                  run::FormatSeconds(without),
                  run::FormatSpeedup(without / with)});
  }

  // 3. Columnar strings vs per-row objects (the srchptn gap).
  {
    auto col = patrol->GetColumn("violation_raw").ValueOrDie();
    double with = TimeIt([&] {
      return kern::Contains(col, "Spe", true, kern::StringEngine::kColumnar)
          .status();
    });
    double without = TimeIt([&] {
      return kern::Contains(col, "Spe", true, kern::StringEngine::kRowObjects)
          .status();
    });
    table.AddRow({"srchptn: columnar strings", run::FormatSeconds(with),
                  run::FormatSeconds(without),
                  run::FormatSpeedup(without / with)});
  }

  // 4. Predicate/projection pushdown (the lazy optimizer).
  {
    std::vector<Op> plan = {
        Op::StrLower("violation"),
        Op::Round("fine", 0),
        Op::ToDatetime("stop_date"),
        Op::Query("driver_age >= 65"),  // selective filter, listed last
    };
    eng::LazySource source;
    source.kind = eng::LazySource::Kind::kTable;
    source.table = patrol;
    eng::PolarsEngine with_engine;
    NoPushdownPolars without_engine;
    double with =
        TimeIt([&] { return with_engine.Execute(source, plan).status(); });
    double without =
        TimeIt([&] { return without_engine.Execute(source, plan).status(); });
    table.AddRow({"lazy: predicate pushdown", run::FormatSeconds(with),
                  run::FormatSeconds(without),
                  run::FormatSpeedup(without / with)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // 5. Streaming breakers vs materialize-then-execute under a tight budget:
  // the mechanism of Table V. Reported as completion, not speed.
  {
    std::vector<Op> plan = {
        Op::Query("driver_age >= 16"),
        Op::SortValues({{"stop_date", true}}),
        Op::Round("fine", 0),
    };
    eng::LazySource source;
    source.kind = eng::LazySource::Kind::kTable;
    source.table = patrol;
    sim::MachineSpec tight{"tight", 8,
                           static_cast<uint64_t>(patrol->ByteSize() * 3 / 2),
                           std::nullopt};
    eng::SparkSqlEngine streaming;
    NoStreamingSpark materializing;
    Status with, without;
    {
      sim::Session tight_session(tight);
      with = streaming.Execute(source, plan).status();
    }
    {
      sim::Session tight_session(tight);
      without = materializing.Execute(source, plan).status();
    }
    std::printf("out-of-core breakers at 1.5x-data budget: with=%s without=%s\n",
                with.ok() ? "completes" : with.ToString().c_str(),
                without.ok() ? "completes" : "OoM");
    std::printf("(spill-backed sort + bounded drain finish where the\n"
                " materializing plan exceeds the machine budget)\n");
  }
  return 0;
}
