// Regenerates the paper's Figure 6: average runtime for writing CSV and
// Parquet (BCF) files, per engine per dataset — including the CuDF
// CSV-write device-memory OoM on the largest dataset (Fig. 6d).
#include <cstdio>

#include "bench/bench_common.h"
#include "datagen/datasets.h"
#include "frame/engine.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "sim/machine.h"

int main(int argc, char** argv) {
  bento::obs::TraceEnvScope trace_scope(
      bento::bench::ParseTraceArg(&argc, argv));
  bento::obs::ResourceReportScope report_scope(
      bento::bench::ParseReportArg(&argc, argv));
  using namespace bento;
  bench::PrintHeader("Figure 6", "write runtime, CSV vs columnar (BCF)");
  run::Runner runner = bench::MakeRunner();

  for (const char* dataset : {"athlete", "loan", "patrol", "taxi"}) {
    auto data =
        gen::GenerateDataset(dataset, bench::ScaleFromEnv()).ValueOrDie();
    run::TextTable table({"engine", "write CSV", "write BCF"});
    for (const std::string& id : bench::AllEngines()) {
      run::RunConfig config;
      config.engine_id = id;
      sim::Session session(runner.EffectiveMachine(config));
      auto engine = frame::CreateEngine(id).ValueOrDie();
      auto frame = engine->FromTable(data);
      if (!frame.ok()) {
        std::string cell = bench::OutcomeCell(frame.status(), -1);
        table.AddRow({id, cell, cell});
        continue;
      }
      std::string csv_out = bench::DataDirFromEnv() + "/out_" + id + ".csv";
      std::string bcf_out = bench::DataDirFromEnv() + "/out_" + id + ".bcf";

      std::string csv_cell, bcf_cell;
      {
        sim::VirtualTimer timer;
        Status st = engine->WriteCsv(frame.ValueOrDie(), csv_out);
        csv_cell = bench::OutcomeCell(st, timer.Elapsed());
      }
      {
        sim::VirtualTimer timer;
        Status st = engine->WriteBcf(frame.ValueOrDie(), bcf_out);
        bcf_cell = bench::OutcomeCell(st, timer.Elapsed());
      }
      std::remove(csv_out.c_str());
      std::remove(bcf_out.c_str());
      table.AddRow({id, csv_cell, bcf_cell});
    }
    std::printf("--- %s ---\n%s\n", dataset, table.ToString().c_str());
  }
  std::printf(
      "paper shape: columnar writes win on smaller datasets; CuDF runs out\n"
      "of device memory writing CSV on taxi but succeeds with the columnar\n"
      "format; DataTable has no columnar writer.\n");
  return 0;
}
