// Regenerates the paper's Figure 4: absolute runtime of the row-wise
// `apply` preparator on Patrol and Taxi for the libraries that do not run
// out of memory (Pandas does, which is why Fig. 4 reports absolute times).
#include <cstdio>

#include "bench/bench_common.h"
#include "frame/engine.h"
#include "obs/resource.h"
#include "obs/trace.h"

int main(int argc, char** argv) {
  bento::obs::TraceEnvScope trace_scope(
      bento::bench::ParseTraceArg(&argc, argv));
  bento::obs::ResourceReportScope report_scope(
      bento::bench::ParseReportArg(&argc, argv));
  using namespace bento;
  using frame::Op;
  bench::PrintHeader("Figure 4",
                     "row-wise apply absolute runtime (Patrol, Taxi)");
  run::Runner runner = bench::MakeRunner();

  for (const char* dataset : {"patrol", "taxi"}) {
    const char* fn = std::string(dataset) == "patrol" ? "age_decade"
                                                      : "total_check";
    col::TypeId out_type = std::string(dataset) == "patrol"
                               ? col::TypeId::kInt64
                               : col::TypeId::kFloat64;
    run::TextTable table({"engine", "applyrow"});
    for (const std::string& id : bench::AllEngines()) {
      run::RunConfig config;
      config.engine_id = id;
      config.mode = run::RunMode::kFunctionCore;

      // A one-preparator pipeline: just the row-wise apply.
      run::Pipeline pipeline;
      pipeline.dataset = dataset;
      frame::Op op = Op::ApplyRow(
          "applied", run::LookupRowFn(fn).ValueOrDie(), out_type);
      op.text = fn;
      pipeline.steps.push_back(
          run::PipelineStep{frame::Stage::kDC, std::move(op), true});

      auto report = runner.Run(config, pipeline, dataset);
      if (!report.ok()) {
        table.AddRow({id, "err"});
        continue;
      }
      const run::RunReport& r = report.ValueOrDie();
      double seconds = r.ops.empty() ? -1.0 : r.ops[0].seconds;
      table.AddRow({id, bench::OutcomeCell(r.status, seconds)});
    }
    std::printf("--- %s ---\n%s\n", dataset, table.ToString().c_str());
  }
  std::printf(
      "paper shape: Pandas OoM on Patrol; Vaex fastest (columnar engine);\n"
      "every library struggles with the untyped row boundary.\n");
  return 0;
}
