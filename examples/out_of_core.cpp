// The paper's scalability headline, reproduced in one file: under a memory
// budget that the eager Pandas model cannot survive, the SparkSQL model's
// streaming execution (partial aggregation, external sort, spilled runs)
// finishes the same pipeline.
//
//   $ ./build/examples/out_of_core
#include <cstdio>

#include "bento/pipeline.h"
#include "bento/report.h"
#include "bento/runner.h"
#include "sim/machine.h"

using namespace bento;

int main() {
  // A generated taxi sample and a machine whose RAM budget is only ~2.5x the
  // raw CSV — room for one working copy, not for eager intermediates.
  run::Runner runner("./example_data", 0.001);
  auto csv = runner.EnsureCsv("taxi").ValueOrDie();
  FILE* f = std::fopen(csv.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const uint64_t csv_bytes = static_cast<uint64_t>(std::ftell(f));
  std::fclose(f);

  auto pipeline = run::PipelineFor("taxi").ValueOrDie();
  // NB: Runner scales machine RAM by the dataset scale; pre-divide so the
  // budget lands exactly where we want it.
  sim::MachineSpec tight{"tight-box", 8,
                         static_cast<uint64_t>(csv_bytes * 2.5 / 0.001),
                         std::nullopt};

  std::printf("taxi sample: %.1f MiB CSV; machine budget: %.1f MiB\n\n",
              csv_bytes / 1048576.0, csv_bytes * 2.5 / 1048576.0);

  for (const char* id : {"pandas", "modin_ray", "polars", "spark_sql"}) {
    run::RunConfig config;
    config.engine_id = id;
    config.machine = tight;
    config.mode = run::RunMode::kPipelineFull;
    auto report = runner.Run(config, pipeline, "taxi");
    if (!report.ok()) {
      std::printf("%-10s error: %s\n", id, report.status().ToString().c_str());
      continue;
    }
    const run::RunReport& r = report.ValueOrDie();
    if (r.status.ok()) {
      std::printf("%-10s completed in %s (peak host memory %.1f MiB)\n", id,
                  run::FormatSeconds(r.total_seconds).c_str(),
                  r.peak_host_bytes / 1048576.0);
    } else if (r.status.IsOutOfMemory()) {
      std::printf("%-10s OUT OF MEMORY (peak reached %.1f MiB)\n", id,
                  r.peak_host_bytes / 1048576.0);
    } else {
      std::printf("%-10s failed: %s\n", id, r.status.ToString().c_str());
    }
  }

  std::printf(
      "\nwhy: the SparkSQL model streams chunks through the whole plan and\n"
      "uses partial aggregation / external sort at pipeline breakers, so its\n"
      "peak memory is O(chunk + output) instead of O(k copies of the data).\n");
  return 0;
}
