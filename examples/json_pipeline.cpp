// Bento's configuration story: define a data-preparation pipeline as JSON
// (the paper's framework configures pipelines through JSON files), load it,
// and deploy the same spec against two different engines.
//
//   $ ./build/examples/json_pipeline
#include <cstdio>

#include "bento/pipeline.h"
#include "bento/runner.h"
#include "datagen/datasets.h"
#include "frame/engine.h"

using namespace bento;

static const char* kSpec = R"json({
  "dataset": "taxi",
  "steps": [
    {"stage": "EDA", "op": "isna"},
    {"stage": "EDA", "op": "outlier", "column": "trip_duration",
     "lower_q": 0.01, "upper_q": 0.99},
    {"stage": "EDA", "op": "query", "text": "passenger_count <= 6"},
    {"stage": "DT",  "op": "apply", "new_name": "speed",
     "text": "trip_distance / ((trip_duration + 1) / 3600)"},
    {"stage": "DT",  "op": "groupby", "columns": ["vendor_id"],
     "aggs": [{"column": "fare_amount", "agg": "mean", "as": "avg_fare"}],
     "carry": false},
    {"stage": "DC",  "op": "round", "column": "fare_amount", "decimals": 1},
    {"stage": "DC",  "op": "fillna", "column": "tip_amount",
     "value": {"kind": "double", "value": 0}}
  ]
})json";

int main() {
  auto spec = ParseJson(kSpec).ValueOrDie();
  auto pipeline = run::PipelineFromJson(spec).ValueOrDie();
  std::printf("loaded %zu steps from the JSON spec\n\n",
              pipeline.steps.size());

  // Generate a small taxi sample and run the same spec on two engines.
  auto table = gen::GenerateDataset("taxi", 0.0002).ValueOrDie();
  for (const char* id : {"pandas", "spark_sql"}) {
    auto engine = frame::CreateEngine(id).ValueOrDie();
    auto frame = engine->FromTable(table).ValueOrDie();
    std::printf("=== %s ===\n", id);
    for (const run::PipelineStep& step : pipeline.steps) {
      if (frame::IsAction(step.op.kind)) {
        auto action = frame->RunAction(step.op).ValueOrDie();
        if (step.op.kind == frame::OpKind::kIsNa) {
          int64_t total = 0;
          for (int64_t c : action.counts) total += c;
          std::printf("  isna: %lld nulls total\n", (long long)total);
        } else if (step.op.kind == frame::OpKind::kLocateOutliers) {
          std::printf("  outlier bounds on %s: [%.1f, %.1f], %lld outside\n",
                      step.op.column.c_str(), action.lower_bound,
                      action.upper_bound, (long long)action.count);
        }
        continue;
      }
      auto next = frame->Apply(step.op).ValueOrDie();
      if (step.carry) frame = next;
    }
    auto result = frame->Collect().ValueOrDie();
    std::printf("  final frame: %lld rows x %d columns\n\n",
                (long long)result->num_rows(), result->num_columns());
  }

  // Round-trip: the loaded pipeline serializes back to an equivalent spec.
  std::printf("re-serialized spec:\n%s\n",
              run::PipelineToJson(pipeline).Dump(2).c_str());
  return 0;
}
