// Compare engines on one pipeline: the paper's core scenario. Generates a
// scaled Athlete dataset, runs the reconstructed Kaggle pipeline with every
// engine under the simulated evaluation machine, and prints a ranking.
//
//   $ ./build/examples/compare_engines [scale]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bento/pipeline.h"
#include "bento/report.h"
#include "bento/runner.h"

using namespace bento;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.002;
  run::Runner runner("./example_data", scale);
  auto pipeline = run::PipelineFor("athlete").ValueOrDie();

  std::printf("running the athlete pipeline (%zu preparators) with every "
              "engine at scale %g...\n\n",
              pipeline.steps.size(), scale);

  struct Entry {
    std::string engine;
    double seconds;
    std::string io, eda, dt, dc;
  };
  std::vector<Entry> entries;
  for (const std::string& id : frame::EngineIds()) {
    run::RunConfig config;
    config.engine_id = id;
    config.mode = run::RunMode::kPipelineStage;
    auto report = runner.Run(config, pipeline, "athlete");
    if (!report.ok() || !report.ValueOrDie().status.ok()) {
      std::printf("%-12s failed: %s\n", id.c_str(),
                  (report.ok() ? report.ValueOrDie().status : report.status())
                      .ToString()
                      .c_str());
      continue;
    }
    const run::RunReport& r = report.ValueOrDie();
    auto stage = [&](frame::Stage s) {
      auto it = r.stage_seconds.find(s);
      return run::FormatSeconds(it == r.stage_seconds.end() ? 0 : it->second);
    };
    entries.push_back({id, r.total_seconds, stage(frame::Stage::kIO),
                       stage(frame::Stage::kEDA), stage(frame::Stage::kDT),
                       stage(frame::Stage::kDC)});
  }

  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.seconds < b.seconds; });

  run::TextTable table({"rank", "engine", "total", "I/O", "EDA", "DT", "DC"});
  int rank = 1;
  for (const Entry& e : entries) {
    table.AddRow({std::to_string(rank++), e.engine,
                  run::FormatSeconds(e.seconds), e.io, e.eda, e.dt, e.dc});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\n(virtual time on the simulated 24-core evaluation host;\n"
              "rankings are the interesting part, per the paper)\n");
  return 0;
}
