// Produce a Chrome/Perfetto trace of one pipeline run: the observability
// tour. Runs a dataset pipeline in function-core mode (every preparator
// forced and timed, as in the paper's per-operation measurements) with
// tracing on, then prints where to load the result.
//
//   $ ./build/examples/trace_pipeline [--trace out.json] [--report] \
//       [--streaming] [dataset] [engine]
//
// Defaults: loan pipeline, polars engine, trace written to
// bento_trace.json (or $BENTO_TRACE when set). Open the file at
// https://ui.perfetto.dev or chrome://tracing; see README.md for the
// recipe and DESIGN.md for the span taxonomy. `--report` (or BENTO_REPORT=1)
// additionally samples per-span hardware counters and prints the
// resource/energy rollup table after the run. `--streaming` switches to the
// out-of-core shape (laptop RAM model, per-stage collect): with
// BENTO_EXECUTION=real and BENTO_PIPELINE_WORKERS=4 the trace shows the
// morsel pipeline's overlapping `pipeline.chunk` / `pipeline.prefetch`
// spans across worker threads.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bento/pipeline.h"
#include "bento/report.h"
#include "bento/runner.h"
#include "sim/machine.h"

using namespace bento;

int main(int argc, char** argv) {
  std::string trace_path;
  std::string dataset = "loan";
  std::string engine = "polars";
  bool report_requested = false;
  bool streaming = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--report") == 0) {
      report_requested = true;
    } else if (std::strcmp(argv[i], "--streaming") == 0) {
      streaming = true;
    } else if (positional == 0) {
      dataset = argv[i];
      ++positional;
    } else {
      engine = argv[i];
    }
  }
  // Precedence: --trace flag, then $BENTO_TRACE, then the default file.
  if (trace_path.empty()) {
    const char* env = std::getenv("BENTO_TRACE");
    trace_path = env != nullptr ? env : "bento_trace.json";
  }

  run::Runner runner("./example_data", 0.002);
  auto pipeline = run::PipelineFor(dataset);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "unknown dataset '%s': %s\n", dataset.c_str(),
                 pipeline.status().ToString().c_str());
    return 1;
  }

  run::RunConfig config;
  config.engine_id = engine;
  config.mode = run::RunMode::kFunctionCore;
  if (streaming) {
    config.mode = run::RunMode::kPipelineStage;
    config.machine = sim::MachineSpec::Laptop();
    config.use_bcf_source = engine != "vaex";
  }
  config.trace_path = trace_path;
  config.collect_resources = report_requested;
  auto report = runner.Run(config, pipeline.ValueOrDie(), dataset);
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("%s pipeline on %s (%s mode)\n\n%s\n", dataset.c_str(),
              engine.c_str(),
              streaming ? "streaming out-of-core" : "function-core",
              run::RunReportText(report.ValueOrDie()).c_str());
  std::printf("trace written to %s — load it at https://ui.perfetto.dev\n",
              trace_path.c_str());
  return report.ValueOrDie().status.ok() ? 0 : 1;
}
