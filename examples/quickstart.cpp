// Quickstart: build a dataframe, run preparators through an engine, and
// inspect the results — the smallest end-to-end tour of the public API.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "columnar/builder.h"
#include "frame/engine.h"

using namespace bento;

int main() {
  // 1. Build a small table with the columnar builders.
  col::Int64Builder ids;
  col::Float64Builder scores;
  col::StringBuilder names;
  const char* people[] = {"Ada", "Grace", "Edsger", "Barbara", "Donald"};
  for (int i = 0; i < 5; ++i) {
    ids.Append(i + 1);
    if (i == 2) {
      scores.AppendNull();  // a missing value to clean up later
    } else {
      scores.Append(3.5 + i);
    }
    names.Append(people[i]);
  }
  auto schema = std::make_shared<col::Schema>(std::vector<col::Field>{
      {"id", col::TypeId::kInt64},
      {"score", col::TypeId::kFloat64},
      {"name", col::TypeId::kString}});
  auto table = col::Table::Make(schema, {ids.Finish().ValueOrDie(),
                                         scores.Finish().ValueOrDie(),
                                         names.Finish().ValueOrDie()})
                   .ValueOrDie();
  std::printf("input:\n%s\n", table->ToString().c_str());

  // 2. Pick an engine (any id from frame::EngineIds() works identically).
  auto engine = frame::CreateEngine("polars").ValueOrDie();
  auto frame = engine->FromTable(table).ValueOrDie();

  // 3. Run preparators. Actions inspect; transforms return a new frame.
  auto isna = frame->RunAction(frame::Op::IsNa()).ValueOrDie();
  std::printf("null counts per column:");
  for (int64_t c : isna.counts) std::printf(" %lld", (long long)c);
  std::printf("\n\n");

  frame = frame->Apply(frame::Op::FillNaMean("score")).ValueOrDie();
  frame = frame->Apply(frame::Op::ApplyExpr("score2", "score * 2")).ValueOrDie();
  frame = frame->Apply(frame::Op::Query("score2 > 9")).ValueOrDie();
  frame = frame->Apply(
              frame::Op::SortValues({kern::SortKey{"score", false}}))
              .ValueOrDie();

  // 4. Collect forces lazy plans and returns the materialized table.
  auto result = frame->Collect().ValueOrDie();
  std::printf("result:\n%s\n", result->ToString().c_str());
  return 0;
}
